//! Index arithmetic for complete β-ary trees over a bucketized domain.
//!
//! A [`TreeShape`] describes a tree whose `d = βʰ` leaves are the buckets of
//! the value domain. Level 0 is the root; level `h` holds the leaves. All
//! hierarchy methods (HH, HH-ADMM, Haar) share this geometry.

use crate::error::HierarchyError;

/// Geometry of a complete β-ary tree with `branching.pow(height)` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    branching: usize,
    height: usize,
    leaves: usize,
}

impl TreeShape {
    /// Creates the shape for a domain of `leaves` buckets and the given
    /// branching factor. `leaves` must be an exact positive power of
    /// `branching`.
    pub fn new(branching: usize, leaves: usize) -> Result<Self, HierarchyError> {
        if branching < 2 {
            return Err(HierarchyError::InvalidParameter(format!(
                "branching factor must be at least 2, got {branching}"
            )));
        }
        let mut height = 0usize;
        let mut size = 1usize;
        while size < leaves {
            size = size
                .checked_mul(branching)
                .ok_or_else(|| HierarchyError::InvalidParameter("tree size overflow".into()))?;
            height += 1;
        }
        if size != leaves || height == 0 {
            return Err(HierarchyError::DomainNotPowerOfBranching {
                domain: leaves,
                branching,
            });
        }
        Ok(TreeShape {
            branching,
            height,
            leaves,
        })
    }

    /// The branching factor β.
    #[must_use]
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// The number of levels below the root (leaves live at this level).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The number of leaves `d`.
    #[must_use]
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Number of nodes at `level` (level 0 = root).
    #[must_use]
    pub fn level_size(&self, level: usize) -> usize {
        debug_assert!(level <= self.height);
        self.branching.pow(level as u32)
    }

    /// Total number of nodes over all levels.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        (0..=self.height).map(|l| self.level_size(l)).sum()
    }

    /// The ancestor, at `level`, of the leaf with index `leaf`.
    #[must_use]
    pub fn ancestor_at_level(&self, leaf: usize, level: usize) -> usize {
        debug_assert!(leaf < self.leaves && level <= self.height);
        leaf / self.branching.pow((self.height - level) as u32)
    }

    /// The range of leaf indices `[lo, hi)` covered by node `k` of `level`.
    #[must_use]
    pub fn leaf_range(&self, level: usize, k: usize) -> (usize, usize) {
        debug_assert!(level <= self.height && k < self.level_size(level));
        let span = self.branching.pow((self.height - level) as u32);
        (k * span, (k + 1) * span)
    }

    /// Index of the parent of node `k` at `level` (level must be ≥ 1).
    #[must_use]
    pub fn parent(&self, k: usize) -> usize {
        k / self.branching
    }

    /// Indices of the children of node `k` at `level` (level must be < height).
    #[must_use]
    pub fn children(&self, k: usize) -> std::ops::Range<usize> {
        k * self.branching..(k + 1) * self.branching
    }

    /// Decomposes the leaf-interval `[lo, hi)` into the canonical set of
    /// maximal tree nodes, returned as `(level, node)` pairs. This is the
    /// O(β·h) decomposition hierarchical methods use to answer range
    /// queries.
    #[must_use]
    pub fn canonical_decomposition(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.decompose(0, 0, lo.min(self.leaves), hi.min(self.leaves), &mut out);
        out
    }

    fn decompose(
        &self,
        level: usize,
        node: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<(usize, usize)>,
    ) {
        if lo >= hi {
            return;
        }
        let (node_lo, node_hi) = self.leaf_range(level, node);
        if hi <= node_lo || lo >= node_hi {
            return;
        }
        if lo <= node_lo && node_hi <= hi {
            out.push((level, node));
            return;
        }
        debug_assert!(level < self.height);
        for child in self.children(node) {
            self.decompose(level + 1, child, lo, hi, out);
        }
    }
}

/// Per-level storage for node values of a complete tree, indexed
/// `levels[level][node]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeValues {
    /// One vector per level, level 0 first.
    pub levels: Vec<Vec<f64>>,
}

impl TreeValues {
    /// All-zero values for the given shape.
    #[must_use]
    pub fn zeros(shape: &TreeShape) -> Self {
        TreeValues {
            levels: (0..=shape.height())
                .map(|l| vec![0.0; shape.level_size(l)])
                .collect(),
        }
    }

    /// Builds the exact tree of a leaf distribution: each node holds the sum
    /// of its leaves.
    #[must_use]
    pub fn from_leaves(shape: &TreeShape, leaves: &[f64]) -> Self {
        debug_assert_eq!(leaves.len(), shape.leaves());
        let mut levels = vec![Vec::new(); shape.height() + 1];
        levels[shape.height()] = leaves.to_vec();
        for level in (0..shape.height()).rev() {
            let child = levels[level + 1].clone();
            levels[level] = child
                .chunks_exact(shape.branching())
                .map(|c| c.iter().sum())
                .collect();
        }
        TreeValues { levels }
    }

    /// Flattens into one vector, root first.
    #[must_use]
    pub fn flatten(&self) -> Vec<f64> {
        self.levels.iter().flatten().copied().collect()
    }

    /// Rebuilds per-level storage from a flattened vector.
    pub fn unflatten(shape: &TreeShape, flat: &[f64]) -> Result<Self, HierarchyError> {
        if flat.len() != shape.total_nodes() {
            return Err(HierarchyError::InvalidParameter(format!(
                "flat vector has {} entries, tree needs {}",
                flat.len(),
                shape.total_nodes()
            )));
        }
        let mut levels = Vec::with_capacity(shape.height() + 1);
        let mut offset = 0;
        for level in 0..=shape.height() {
            let size = shape.level_size(level);
            levels.push(flat[offset..offset + size].to_vec());
            offset += size;
        }
        Ok(TreeValues { levels })
    }

    /// The leaf level values.
    #[must_use]
    pub fn leaves(&self) -> &[f64] {
        self.levels
            .last()
            .expect("tree has at least the root level")
    }

    /// Maximum absolute violation of parent = Σ children over all internal
    /// nodes; 0 for a perfectly consistent tree.
    #[must_use]
    pub fn consistency_gap(&self, shape: &TreeShape) -> f64 {
        let mut worst = 0.0f64;
        for level in 0..shape.height() {
            for k in 0..shape.level_size(level) {
                let child_sum: f64 = shape.children(k).map(|c| self.levels[level + 1][c]).sum();
                worst = worst.max((self.levels[level][k] - child_sum).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validates_powers() {
        assert!(TreeShape::new(4, 256).is_ok());
        assert!(TreeShape::new(2, 1024).is_ok());
        assert!(TreeShape::new(4, 100).is_err());
        assert!(TreeShape::new(1, 4).is_err());
        assert!(TreeShape::new(4, 1).is_err());
    }

    #[test]
    fn shape_geometry() {
        let s = TreeShape::new(4, 256).unwrap();
        assert_eq!(s.height(), 4);
        assert_eq!(s.level_size(0), 1);
        assert_eq!(s.level_size(4), 256);
        assert_eq!(s.total_nodes(), 1 + 4 + 16 + 64 + 256);
        assert_eq!(s.ancestor_at_level(255, 0), 0);
        assert_eq!(s.ancestor_at_level(255, 1), 3);
        assert_eq!(s.ancestor_at_level(0, 4), 0);
        assert_eq!(s.leaf_range(1, 3), (192, 256));
        assert_eq!(s.parent(13), 3);
        assert_eq!(s.children(3), 12..16);
    }

    #[test]
    fn canonical_decomposition_covers_exactly() {
        let s = TreeShape::new(2, 16).unwrap();
        for lo in 0..16 {
            for hi in lo..=16 {
                let nodes = s.canonical_decomposition(lo, hi);
                // Rebuild the covered set and check it equals [lo, hi).
                let mut covered = [false; 16];
                for (level, k) in &nodes {
                    let (a, b) = s.leaf_range(*level, *k);
                    for slot in covered.iter_mut().take(b).skip(a) {
                        assert!(!*slot, "overlap at ({lo},{hi})");
                        *slot = true;
                    }
                }
                for (i, &c) in covered.iter().enumerate() {
                    assert_eq!(c, (lo..hi).contains(&i), "gap at ({lo},{hi}) idx {i}");
                }
            }
        }
    }

    #[test]
    fn canonical_decomposition_is_logarithmic() {
        let s = TreeShape::new(4, 1024).unwrap();
        let nodes = s.canonical_decomposition(1, 1023);
        // At most 2(β-1)h nodes.
        assert!(nodes.len() <= 2 * 3 * 5, "got {}", nodes.len());
    }

    #[test]
    fn tree_values_from_leaves_sums() {
        let s = TreeShape::new(2, 4).unwrap();
        let t = TreeValues::from_leaves(&s, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.levels[0], vec![10.0]);
        assert_eq!(t.levels[1], vec![3.0, 7.0]);
        assert_eq!(t.levels[2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.consistency_gap(&s), 0.0);
        assert_eq!(t.leaves(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = TreeShape::new(3, 27).unwrap();
        let leaves: Vec<f64> = (0..27).map(|i| i as f64).collect();
        let t = TreeValues::from_leaves(&s, &leaves);
        let flat = t.flatten();
        assert_eq!(flat.len(), s.total_nodes());
        let back = TreeValues::unflatten(&s, &flat).unwrap();
        assert_eq!(back, t);
        assert!(TreeValues::unflatten(&s, &flat[1..]).is_err());
    }

    #[test]
    fn consistency_gap_detects_violations() {
        let s = TreeShape::new(2, 4).unwrap();
        let mut t = TreeValues::from_leaves(&s, &[1.0, 2.0, 3.0, 4.0]);
        t.levels[1][0] = 5.0; // should be 3.0
        assert!((t.consistency_gap(&s) - 2.0).abs() < 1e-12);
    }
}
