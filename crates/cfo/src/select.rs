//! Variance-driven oracle selection (paper §4.1: "one chooses either OLH or
//! GRR, based on which one gives lower estimation variance").

use crate::error::CfoError;
use crate::grr::Grr;
use crate::olh::{Olh, OlhReport};
use crate::oracle::FrequencyOracle;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which base oracle the selector picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Generalized Randomized Response.
    Grr,
    /// Optimized Local Hashing.
    Olh,
}

/// Picks GRR or OLH by comparing their closed-form variances:
/// GRR wins iff `d - 2 + eᵉ < 4eᵉ`, i.e. `d < 3eᵉ + 2`.
#[must_use]
pub fn choose_oracle(d: usize, eps: f64) -> OracleKind {
    let e = eps.exp();
    if (d as f64) < 3.0 * e + 2.0 {
        OracleKind::Grr
    } else {
        OracleKind::Olh
    }
}

/// A report from the adaptive oracle, tagged by the underlying protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdaptiveReport {
    /// A GRR report.
    Grr(usize),
    /// An OLH report.
    Olh(OlhReport),
}

/// A frequency oracle that delegates to GRR or OLH, whichever has lower
/// variance for the given `(d, ε)`.
#[derive(Debug, Clone)]
pub enum AdaptiveOracle {
    /// GRR was selected.
    Grr(Grr),
    /// OLH was selected.
    Olh(Olh),
}

impl AdaptiveOracle {
    /// Creates the lower-variance oracle for this `(d, ε)`.
    pub fn new(d: usize, eps: f64) -> Result<Self, CfoError> {
        Ok(match choose_oracle(d, eps) {
            OracleKind::Grr => AdaptiveOracle::Grr(Grr::new(d, eps)?),
            OracleKind::Olh => AdaptiveOracle::Olh(Olh::new(d, eps)?),
        })
    }

    /// Which protocol is in use.
    #[must_use]
    pub fn kind(&self) -> OracleKind {
        match self {
            AdaptiveOracle::Grr(_) => OracleKind::Grr,
            AdaptiveOracle::Olh(_) => OracleKind::Olh,
        }
    }
}

impl FrequencyOracle for AdaptiveOracle {
    type Report = AdaptiveReport;

    fn domain_size(&self) -> usize {
        match self {
            AdaptiveOracle::Grr(o) => o.domain_size(),
            AdaptiveOracle::Olh(o) => o.domain_size(),
        }
    }

    fn epsilon(&self) -> f64 {
        match self {
            AdaptiveOracle::Grr(o) => o.epsilon(),
            AdaptiveOracle::Olh(o) => o.epsilon(),
        }
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        value: usize,
        rng: &mut R,
    ) -> Result<AdaptiveReport, CfoError> {
        Ok(match self {
            AdaptiveOracle::Grr(o) => AdaptiveReport::Grr(o.randomize(value, rng)?),
            AdaptiveOracle::Olh(o) => AdaptiveReport::Olh(o.randomize(value, rng)?),
        })
    }

    fn aggregate(&self, reports: &[AdaptiveReport]) -> Vec<f64> {
        match self {
            AdaptiveOracle::Grr(o) => {
                let rs: Vec<usize> = reports
                    .iter()
                    .filter_map(|r| match r {
                        AdaptiveReport::Grr(v) => Some(*v),
                        AdaptiveReport::Olh(_) => None,
                    })
                    .collect();
                o.aggregate(&rs)
            }
            AdaptiveOracle::Olh(o) => {
                let rs: Vec<OlhReport> = reports
                    .iter()
                    .filter_map(|r| match r {
                        AdaptiveReport::Olh(v) => Some(*v),
                        AdaptiveReport::Grr(_) => None,
                    })
                    .collect();
                o.aggregate(&rs)
            }
        }
    }

    fn estimate_variance(&self, n: usize) -> f64 {
        match self {
            AdaptiveOracle::Grr(o) => o.estimate_variance(n),
            AdaptiveOracle::Olh(o) => o.estimate_variance(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn crossover_follows_variance_formulas() {
        // At eps=1: 3e + 2 ≈ 10.15, so d=8 -> GRR, d=16 -> OLH.
        assert_eq!(choose_oracle(8, 1.0), OracleKind::Grr);
        assert_eq!(choose_oracle(16, 1.0), OracleKind::Olh);
        // Large eps pushes the crossover right.
        assert_eq!(choose_oracle(64, 3.5), OracleKind::Grr);
        // Tiny eps: OLH as soon as d exceeds ~5.
        assert_eq!(choose_oracle(6, 0.1), OracleKind::Olh);
    }

    #[test]
    fn crossover_matches_explicit_variance_comparison() {
        for &d in &[4usize, 8, 16, 64, 256] {
            for &eps in &[0.5, 1.0, 2.0, 3.0] {
                let grr = Grr::theoretical_variance(d, eps, 1000);
                let olh = Olh::theoretical_variance(eps, 1000);
                let expected = if grr < olh {
                    OracleKind::Grr
                } else {
                    OracleKind::Olh
                };
                assert_eq!(choose_oracle(d, eps), expected, "d={d} eps={eps}");
            }
        }
    }

    #[test]
    fn adaptive_oracle_runs_end_to_end() {
        for &(d, eps) in &[(4usize, 1.0), (64usize, 1.0)] {
            let o = AdaptiveOracle::new(d, eps).unwrap();
            let mut rng = SplitMix64::new(51);
            let values: Vec<usize> = (0..50_000).map(|i| i % 2).collect();
            let est = o.run(&values, &mut rng).unwrap();
            assert!((est[0] - 0.5).abs() < 0.05, "d={d}: est[0]={}", est[0]);
            assert!((est[1] - 0.5).abs() < 0.05, "d={d}: est[1]={}", est[1]);
        }
    }

    #[test]
    fn adaptive_kind_is_consistent() {
        let o = AdaptiveOracle::new(4, 1.0).unwrap();
        assert_eq!(o.kind(), OracleKind::Grr);
        let o = AdaptiveOracle::new(1024, 1.0).unwrap();
        assert_eq!(o.kind(), OracleKind::Olh);
    }
}
