//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly rather than a `Result`, recovering
//! the data if a previous holder panicked. Performance characteristics are
//! those of `std::sync`, which is more than adequate for the experiment
//! runner's coarse-grained result collection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Duration;

pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// RAII guard returned by [`Mutex::lock`].
///
/// Unlike a plain re-export of [`std::sync::MutexGuard`], this owns the
/// inner guard behind an `Option` so [`Condvar::wait`] can temporarily
/// take it (std's condvar consumes the guard; parking_lot's borrows it).
/// The `Option` is `Some` at every point user code can observe.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard held")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard held")
    }
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard { inner: Some(guard) })
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than a notification.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s borrow-the-guard interface.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the mutex and blocks until notified, reacquiring
    /// the lock before returning. Spurious wakeups are possible, as with
    /// every condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard held");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// [`Self::wait`] with an upper bound on the blocking time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard held");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until `condition` returns `false`, rechecking after every
    /// wakeup with the lock held.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            cvar.wait_while(&mut started, |s| !*s);
            assert!(*started);
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
