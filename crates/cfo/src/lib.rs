//! Categorical frequency oracles (CFOs) under ε-local differential privacy.
//!
//! A frequency oracle lets an untrusted aggregator estimate, for every value
//! `v` of a categorical domain `{0, …, d-1}`, the fraction of users holding
//! `v` — from randomized reports only (paper §2.1). This crate implements
//! the oracles the paper builds on:
//!
//! - [`grr::Grr`] — Generalized Randomized Response, best for small domains;
//! - [`olh::Olh`] — Optimized Local Hashing (Wang et al., USENIX Sec '17),
//!   whose variance is independent of the domain size;
//! - [`hadamard::Hrr`] — Hadamard Randomized Response, the g=2 hashing
//!   oracle used by the HaarHRR baseline (Kulkarni et al., PVLDB '19);
//! - [`oue::Oue`] — Optimized Unary Encoding, included as an extension;
//!
//! plus [`select`] (the variance-driven GRR/OLH choice the paper applies),
//! [`postprocess`] (Norm-Sub and friends, §4.1), and [`binning`] (the
//! complete "CFO with binning" distribution estimator of §4.1).
//!
//! Every oracle also implements the workspace-wide
//! [`ldp_core::Mechanism`] trait (see [`mechanism`]): streaming O(d)
//! aggregation state, exact shard merges, and wire-format reports through
//! the unified `Client`/`Aggregator` split.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod binning;
pub mod error;
pub mod grr;
pub mod hadamard;
pub mod mechanism;
pub mod olh;
pub mod oracle;
pub mod oue;
pub mod postprocess;
pub mod select;

pub use binning::BinningEstimator;
pub use error::CfoError;
pub use grr::Grr;
pub use hadamard::Hrr;
pub use mechanism::{AdaptiveState, CountState, SpectrumState, SupportState};
pub use olh::Olh;
pub use oracle::FrequencyOracle;
pub use oue::Oue;
pub use select::{choose_oracle, AdaptiveOracle, OracleKind};
