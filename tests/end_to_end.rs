//! Cross-crate integration tests: full client→aggregator pipelines on the
//! evaluation datasets, checking the paper's qualitative claims at reduced
//! scale.

use sw_ldp::hierarchy::range::range_query_tree;
use sw_ldp::prelude::*;

fn beta_workload(n: usize) -> (Dataset, Histogram) {
    let ds = DatasetSpec {
        kind: DatasetKind::Beta,
        n,
        seed: 1001,
    }
    .generate();
    let truth = ds.histogram(256).unwrap();
    (ds, truth)
}

#[test]
fn sw_ems_full_pipeline_recovers_beta() {
    let (ds, truth) = beta_workload(60_000);
    let pipeline = SwPipeline::new(1.0, 256).unwrap();
    let mut rng = SplitMix64::new(1);
    let est = pipeline
        .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
        .unwrap();
    let w1 = wasserstein(&truth, &est).unwrap();
    assert!(w1 < 0.02, "W1 = {w1}");
    assert!((est.mean() - truth.mean()).abs() < 0.02);
}

#[test]
fn sw_ems_beats_cfo_binning_on_wasserstein() {
    // The paper's headline Figure 2 claim, at eps = 1 on Beta(5,2).
    let (ds, truth) = beta_workload(60_000);
    let mut rng = SplitMix64::new(2);
    let pipeline = SwPipeline::new(1.0, 256).unwrap();
    let sw = pipeline
        .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
        .unwrap();
    let w1_sw = wasserstein(&truth, &sw).unwrap();

    let mut worst_ratio: f64 = 0.0;
    for bins in [16, 32, 64] {
        let est = BinningEstimator::new(bins, 256, 1.0)
            .unwrap()
            .estimate(&ds.values, &mut rng)
            .unwrap();
        let w1_bin = wasserstein(&truth, &est).unwrap();
        worst_ratio = worst_ratio.max(w1_sw / w1_bin);
        assert!(
            w1_sw < w1_bin,
            "SW-EMS ({w1_sw}) should beat binning-{bins} ({w1_bin})"
        );
    }
    // SW should win clearly, not marginally.
    assert!(worst_ratio < 0.95, "ratio {worst_ratio}");
}

#[test]
fn sw_ems_beats_sw_em_on_smooth_data_on_average() {
    // EMS's whole point: on smooth distributions EM overfits the noise.
    // The paper (§6.3) notes EM "sometimes performs better but is not
    // stable", so the claim to verify is about the average, not every
    // single trial.
    let (ds, truth) = beta_workload(60_000);
    let pipeline = SwPipeline::new(1.0, 256).unwrap();
    let mut w1_ems = 0.0;
    let mut w1_em = 0.0;
    let trials = 5;
    for seed in 0..trials {
        let mut rng = SplitMix64::new(300 + seed);
        let ems = pipeline
            .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
            .unwrap();
        let em = pipeline
            .estimate(&ds.values, &Reconstruction::Em, &mut rng)
            .unwrap();
        w1_ems += wasserstein(&truth, &ems).unwrap();
        w1_em += wasserstein(&truth, &em).unwrap();
    }
    assert!(
        w1_ems < w1_em,
        "mean EMS W1 ({}) should beat mean EM W1 ({}) on smooth data",
        w1_ems / trials as f64,
        w1_em / trials as f64
    );
}

#[test]
fn hh_admm_beats_plain_hh_on_range_queries() {
    let ds = DatasetSpec {
        kind: DatasetKind::Retirement,
        n: 50_000,
        seed: 1003,
    }
    .generate();
    let d = 256;
    let truth = ds.histogram(d).unwrap();
    let buckets = ds.bucket_values(d);
    let hh = HierarchicalHistogram::new(4, d, 0.5).unwrap();
    let mut rng = SplitMix64::new(4);
    let raw = hh.collect(&buckets, &mut rng).unwrap();
    let plain_leaves = hh.make_consistent(&raw).unwrap().leaves().to_vec();
    let admm = hh_admm_histogram(hh.shape(), &raw, AdmmConfig::default()).unwrap();

    let mut qrng = SplitMix64::new(5);
    let e_plain =
        sw_ldp::metrics::range_query_mae_signed(&truth, &plain_leaves, 0.1, 500, &mut qrng)
            .unwrap();
    let mut qrng = SplitMix64::new(5);
    let e_admm = range_query_mae(&truth, &admm, 0.1, 500, &mut qrng).unwrap();
    assert!(
        e_admm < e_plain,
        "ADMM ({e_admm}) should beat plain HH ({e_plain})"
    );
}

#[test]
fn consistent_hierarchy_answers_range_queries_from_any_level() {
    let ds = DatasetSpec {
        kind: DatasetKind::Taxi,
        n: 30_000,
        seed: 1004,
    }
    .generate();
    let d = 64;
    let buckets = ds.bucket_values(d);
    let hh = HierarchicalHistogram::new(4, d, 2.0).unwrap();
    let mut rng = SplitMix64::new(6);
    let raw = hh.collect(&buckets, &mut rng).unwrap();
    let tree = hh.make_consistent(&raw).unwrap();
    // Decomposed tree answers equal plain leaf sums.
    for (lo, hi) in [(0usize, 64usize), (5, 20), (17, 18), (32, 64)] {
        let via_tree = range_query_tree(hh.shape(), &tree, lo, hi);
        let via_leaves: f64 = tree.leaves()[lo..hi].iter().sum();
        assert!((via_tree - via_leaves).abs() < 1e-9);
    }
}

#[test]
fn discrete_and_continuous_sw_agree() {
    // §5.4: randomize-before-bucketize and bucketize-before-randomize give
    // very similar results.
    let (ds, truth) = beta_workload(80_000);
    let d = 256;
    let eps = 1.0;
    let mut rng = SplitMix64::new(7);

    let cont = SwPipeline::new(eps, d)
        .unwrap()
        .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
        .unwrap();

    let dsw = DiscreteSw::new(d, eps).unwrap();
    let reports: Vec<usize> = ds
        .bucket_values(d)
        .iter()
        .map(|&v| dsw.randomize(v, &mut rng).unwrap())
        .collect();
    let counts = dsw.aggregate(&reports).unwrap();
    let m = dsw.transition_matrix().unwrap();
    let disc = sw_ldp::sw::reconstruct(&m, &counts, &EmConfig::ems())
        .unwrap()
        .histogram;

    let w1_cont = wasserstein(&truth, &cont).unwrap();
    let w1_disc = wasserstein(&truth, &disc).unwrap();
    assert!(
        (w1_cont - w1_disc).abs() < 0.01,
        "R-B {w1_cont} vs B-R {w1_disc} should be similar"
    );
}

#[test]
fn scalar_protocols_match_distribution_estimates() {
    let ds = DatasetSpec {
        kind: DatasetKind::Taxi,
        n: 100_000,
        seed: 1005,
    }
    .generate();
    let truth = ds.histogram(1024).unwrap();
    let mut rng = SplitMix64::new(8);
    for mech in [MeanMechanism::Sr, MeanMechanism::Pm] {
        let proto = MeanVariance::new(mech, 2.0).unwrap();
        let mean = proto.estimate_mean(&ds.values, &mut rng).unwrap();
        assert!(
            (mean - truth.mean()).abs() < 0.02,
            "{mech:?} mean {mean} vs {}",
            truth.mean()
        );
    }
}

#[test]
fn all_methods_run_on_all_datasets_at_small_scale() {
    // Matrix smoke test: every method × every dataset kind.
    for kind in DatasetKind::all() {
        let ds = DatasetSpec {
            kind,
            n: 12_000,
            seed: 1006,
        }
        .generate();
        let d = 256;
        let truth = ds.histogram(d).unwrap();
        for method in Method::moment_methods()
            .into_iter()
            .chain([Method::Hh, Method::HaarHrr])
        {
            let r = sw_ldp::experiments::evaluate_trial(method, &ds.values, &truth, d, 1.0, 99, 20);
            assert!(
                r.is_ok(),
                "{} failed on {}: {:?}",
                method.name(),
                kind.name(),
                r.err()
            );
        }
    }
}
