//! Figure 6 harness benchmark: EMS trials at bandwidths around the
//! closed-form optimum, plus the bandwidth rule itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_dataset, bench_truth, BENCH_D, BENCH_N};
use ldp_datasets::DatasetKind;
use ldp_metrics::wasserstein;
use ldp_numeric::SplitMix64;
use ldp_sw::{optimal_b, Reconstruction, SwPipeline, Wave};
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    group.bench_function("optimal_b_closed_form", |b| {
        b.iter(|| optimal_b(black_box(1.0)).unwrap())
    });

    let ds = bench_dataset(DatasetKind::Beta, BENCH_N);
    let truth = bench_truth(&ds, BENCH_D);
    for b_val in [0.05f64, 0.25] {
        group.bench_function(format!("ems_trial_b{b_val}"), |bch| {
            let wave = Wave::square(b_val, 1.0).unwrap();
            let pipeline = SwPipeline::with_wave(wave, BENCH_D, BENCH_D).unwrap();
            let mut seed = 400u64;
            bch.iter(|| {
                seed += 1;
                let mut rng = SplitMix64::new(seed);
                let est = pipeline
                    .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
                    .unwrap();
                wasserstein(&truth, &est).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
