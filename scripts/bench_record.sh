#!/usr/bin/env bash
# Runs the `em_reconstruction` criterion bench and records the perf
# trajectory into BENCH_em.json at the repo root, so PRs can compare
# against the committed baseline.
#
# Usage:
#   scripts/bench_record.sh          # full run, overwrites BENCH_em.json
#   scripts/bench_record.sh smoke    # seconds-long CI smoke run; writes
#                                    # BENCH_em.smoke.json instead
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
OUT="BENCH_em.json"
if [ "$MODE" = "smoke" ]; then
  export BENCH_SMOKE=1
  OUT="BENCH_em.smoke.json"
fi

RAW="$(cargo bench --bench em_reconstruction 2>&1 | tee /dev/stderr | grep '^bench: ' || true)"
if [ -z "$RAW" ]; then
  echo "bench_record: no 'bench:' lines captured" >&2
  exit 1
fi

printf '%s\n' "$RAW" | sort | awk \
  -v mode="$MODE" \
  -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  -v threads="$(nproc 2>/dev/null || echo 1)" '
{
  name = $2
  ns[name] = $3 + 0
  order[count++] = name
}
END {
  printf "{\n"
  printf "  \"schema\": 1,\n"
  printf "  \"mode\": \"%s\",\n", mode
  printf "  \"recorded_at\": \"%s\",\n", date
  printf "  \"host_threads\": %d,\n", threads
  printf "  \"em_iters_per_call\": 32,\n"

  printf "  \"median_ns_per_call\": {"
  sep = ""
  for (k = 0; k < count; k++) {
    printf "%s\n    \"%s\": %.1f", sep, order[k], ns[order[k]]
    sep = ","
  }
  printf "\n  },\n"

  # Per-EM-iteration cost: em_fixed/{kind}_d{D}_iters{K} -> ns / K.
  printf "  \"em_iteration_ns\": {"
  sep = ""
  for (k = 0; k < count; k++) {
    name = order[k]
    if (match(name, /^em_fixed\//) &&
        match(name, /_iters[0-9]+$/)) {
      iters = substr(name, RSTART + 6) + 0
      short = substr(name, 10, RSTART - 10)
      periter[short] = ns[name] / iters
      printf "%s\n    \"%s\": %.1f", sep, short, periter[short]
      sep = ","
    }
  }
  printf "\n  },\n"

  # Structured-vs-dense speedup per granularity.
  printf "  \"em_speedup_structured_vs_dense\": {"
  sep = ""
  for (short in periter) {
    if (match(short, /^dense_d[0-9]+$/)) {
      dim = substr(short, 8)
      other = "structured_d" dim
      if (other in periter && periter[other] > 0) {
        speedup[dim] = periter[short] / periter[other]
      }
    }
  }
  for (k = 0; k < count; k++) {
    name = order[k]
    if (match(name, /^em_fixed\/dense_d[0-9]+_iters/)) {
      dim = substr(name, 17, RSTART + RLENGTH - 23)
      sub(/_.*/, "", dim)
      if (dim in speedup) {
        printf "%s\n    \"d%s\": %.2f", sep, dim, speedup[dim]
        sep = ","
        delete speedup[dim]
      }
    }
  }
  printf "\n  },\n"

  # client_batch/randomize_n{N}_w{W} -> reports per second.
  printf "  \"randomize_reports_per_sec\": {"
  sep = ""
  for (k = 0; k < count; k++) {
    name = order[k]
    if (match(name, /^client_batch\/randomize_n[0-9]+_w[0-9]+$/)) {
      split(name, parts, /_n|_w/)
      n = parts[2] + 0
      w = parts[3] + 0
      printf "%s\n    \"w%d\": %.0f", sep, w, n / (ns[name] * 1e-9)
      sep = ","
    }
  }
  printf "\n  }\n"
  printf "}\n"
}' > "$OUT"

echo "bench_record: wrote $OUT" >&2
cat "$OUT"
