//! Constrained inference over tree estimates (Hay et al., PVLDB 2010),
//! generalized to per-level variances.
//!
//! Given independent noisy estimates of every tree node, the two-pass
//! algorithm computes the generalized-least-squares estimate satisfying the
//! hierarchical constraint "parent = Σ children":
//!
//! 1. **Bottom-up**: each internal node's own estimate is combined with the
//!    sum of its (already combined) children by inverse-variance weighting.
//! 2. **Top-down**: the root value is fixed, and at each step the
//!    discrepancy between a parent and the sum of its children is divided
//!    equally among the children (exact because nodes on one level share a
//!    variance).
//!
//! With all variances equal this is the Euclidean projection onto the
//! consistency subspace `{x : Ax = 0}` — exactly the `ΠC` operator the
//! HH-ADMM algorithm needs (paper Appendix B).

use crate::error::HierarchyError;
use crate::tree::{TreeShape, TreeValues};

/// What the top-down pass pins the root to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RootPolicy {
    /// Keep the root at its bottom-up combined estimate (pure projection).
    Estimated,
    /// Fix the root to a known total — in LDP the total count is public,
    /// so the distribution root is exactly 1 (paper §4.3).
    Fixed(f64),
}

/// Runs weighted constrained inference.
///
/// `level_variances[l]` is the variance of every node estimate on level `l`
/// (level 0 = root). Returns the consistent tree.
pub fn constrained_inference(
    shape: &TreeShape,
    noisy: &TreeValues,
    level_variances: &[f64],
    root: RootPolicy,
) -> Result<TreeValues, HierarchyError> {
    let h = shape.height();
    if noisy.levels.len() != h + 1 {
        return Err(HierarchyError::InvalidParameter(format!(
            "tree has {} levels, expected {}",
            noisy.levels.len(),
            h + 1
        )));
    }
    if level_variances.len() != h + 1 {
        return Err(HierarchyError::InvalidParameter(format!(
            "got {} level variances, expected {}",
            level_variances.len(),
            h + 1
        )));
    }
    if level_variances
        .iter()
        .any(|&v| !(v > 0.0) || !v.is_finite())
    {
        return Err(HierarchyError::InvalidParameter(
            "level variances must be positive and finite".into(),
        ));
    }

    // Bottom-up: z combines each node's own estimate with its children sum.
    let mut z = noisy.clone();
    // Variance of the combined estimate, uniform within a level.
    let mut z_var = vec![0.0; h + 1];
    z_var[h] = level_variances[h];
    for level in (0..h).rev() {
        let child_sum_var = shape.branching() as f64 * z_var[level + 1];
        let own_var = level_variances[level];
        let w_own = child_sum_var / (own_var + child_sum_var);
        for k in 0..shape.level_size(level) {
            let child_sum: f64 = shape.children(k).map(|c| z.levels[level + 1][c]).sum();
            z.levels[level][k] = w_own * noisy.levels[level][k] + (1.0 - w_own) * child_sum;
        }
        z_var[level] = own_var * child_sum_var / (own_var + child_sum_var);
    }

    // Top-down: fix the root, push discrepancies down equally.
    let mut u = z.clone();
    if let RootPolicy::Fixed(total) = root {
        u.levels[0][0] = total;
    }
    let beta = shape.branching() as f64;
    for level in 0..h {
        for k in 0..shape.level_size(level) {
            let child_sum: f64 = shape.children(k).map(|c| z.levels[level + 1][c]).sum();
            let adjust = (u.levels[level][k] - child_sum) / beta;
            for c in shape.children(k) {
                u.levels[level + 1][c] = z.levels[level + 1][c] + adjust;
            }
        }
    }
    Ok(u)
}

/// The Euclidean projection onto the tree-consistency subspace
/// (`ΠC` in the HH-ADMM algorithm): constrained inference with equal
/// weights on every node and the root left free.
pub fn project_consistent(
    shape: &TreeShape,
    values: &TreeValues,
) -> Result<TreeValues, HierarchyError> {
    let vars = vec![1.0; shape.height() + 1];
    constrained_inference(shape, values, &vars, RootPolicy::Estimated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_2_8() -> TreeShape {
        TreeShape::new(2, 8).unwrap()
    }

    #[test]
    fn consistent_input_is_fixed_point() {
        let s = shape_2_8();
        let t = TreeValues::from_leaves(&s, &[0.1, 0.2, 0.05, 0.15, 0.1, 0.1, 0.2, 0.1]);
        let out = constrained_inference(&s, &t, &[1.0; 4], RootPolicy::Estimated).unwrap();
        for (a, b) in out.flatten().iter().zip(t.flatten().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn output_is_always_consistent() {
        let s = shape_2_8();
        // Arbitrary inconsistent values.
        let mut t = TreeValues::zeros(&s);
        let mut v = 0.37;
        for level in &mut t.levels {
            for x in level.iter_mut() {
                v = (v * 7.13 + 0.31) % 1.0;
                *x = v;
            }
        }
        let out = constrained_inference(&s, &t, &[1.0; 4], RootPolicy::Estimated).unwrap();
        assert!(out.consistency_gap(&s) < 1e-9);
    }

    #[test]
    fn fixed_root_is_respected() {
        let s = shape_2_8();
        let mut t = TreeValues::zeros(&s);
        for level in &mut t.levels {
            for (i, x) in level.iter_mut().enumerate() {
                *x = 0.3 + 0.01 * i as f64;
            }
        }
        let out = constrained_inference(&s, &t, &[1.0; 4], RootPolicy::Fixed(1.0)).unwrap();
        assert!((out.levels[0][0] - 1.0).abs() < 1e-12);
        assert!(out.consistency_gap(&s) < 1e-9);
        let leaf_sum: f64 = out.leaves().iter().sum();
        assert!((leaf_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn projection_is_idempotent() {
        let s = shape_2_8();
        let mut t = TreeValues::zeros(&s);
        for (i, level) in t.levels.iter_mut().enumerate() {
            for (j, x) in level.iter_mut().enumerate() {
                *x = ((i * 31 + j * 17) % 11) as f64 / 11.0 - 0.3;
            }
        }
        let once = project_consistent(&s, &t).unwrap();
        let twice = project_consistent(&s, &once).unwrap();
        for (a, b) in once.flatten().iter().zip(twice.flatten().iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_minimizes_l2_distance() {
        // Compare against brute force on the tiny tree (β=2, 2 leaves):
        // variables (r, a, b) with constraint r = a + b. Projection of
        // (r0, a0, b0) onto the plane has closed form with Lagrange
        // multipliers: r = r0 - λ, a = a0 + λ, b = b0 + λ where
        // λ = (r0 - a0 - b0)/3.
        let s = TreeShape::new(2, 2).unwrap();
        let t = TreeValues {
            levels: vec![vec![1.0], vec![0.2, 0.3]],
        };
        let out = project_consistent(&s, &t).unwrap();
        let lambda = (1.0 - 0.2 - 0.3) / 3.0;
        assert!((out.levels[0][0] - (1.0 - lambda)).abs() < 1e-12);
        assert!((out.levels[1][0] - (0.2 + lambda)).abs() < 1e-12);
        assert!((out.levels[1][1] - (0.3 + lambda)).abs() < 1e-12);
    }

    #[test]
    fn low_noise_level_dominates_weighting() {
        // If the parent level is measured nearly noiselessly, the combined
        // estimate should stick to the parent's own value.
        let s = TreeShape::new(2, 2).unwrap();
        let t = TreeValues {
            levels: vec![vec![1.0], vec![0.1, 0.1]],
        };
        let out = constrained_inference(&s, &t, &[1e-9, 10.0], RootPolicy::Estimated).unwrap();
        assert!((out.levels[0][0] - 1.0).abs() < 1e-3);
        // Children get pushed up to match the trusted parent.
        let child_sum: f64 = out.leaves().iter().sum();
        assert!((child_sum - out.levels[0][0]).abs() < 1e-9);
    }

    #[test]
    fn validates_inputs() {
        let s = shape_2_8();
        let t = TreeValues::zeros(&s);
        assert!(constrained_inference(&s, &t, &[1.0; 3], RootPolicy::Estimated).is_err());
        assert!(
            constrained_inference(&s, &t, &[1.0, 1.0, 0.0, 1.0], RootPolicy::Estimated).is_err()
        );
        let bad = TreeValues {
            levels: vec![vec![0.0]],
        };
        assert!(constrained_inference(&s, &bad, &[1.0; 4], RootPolicy::Estimated).is_err());
    }
}
