//! Deterministic, splittable random number generation.
//!
//! Experiments in this workspace must be exactly reproducible from a single
//! seed even when trials run on different threads. [`SplitMix64`] is a tiny,
//! statistically solid generator (Steele, Lea & Flood, OOPSLA 2014) whose
//! state is a single `u64`, which makes deriving independent per-trial
//! streams trivial via [`SplitMix64::split`].

use rand::{Error, RngCore, SeedableRng};

/// The 64-bit finalizer from SplitMix64 / MurmurHash3.
///
/// Also used across the workspace as a cheap integer mixer (e.g. the OLH
/// hash family seeds).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 pseudo-random generator.
///
/// Not cryptographically secure — the workspace uses it for *simulation* of
/// LDP randomizers, where speed and reproducibility matter. A production
/// client deployment would swap in a CSPRNG via the `rand::Rng` bounds used
/// throughout the public APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent generator for a labelled substream.
    ///
    /// `split(a) != split(b)` streams are statistically independent for
    /// `a != b`; used to give each (trial, method) pair its own stream.
    #[must_use]
    pub fn split(&self, stream: u64) -> Self {
        SplitMix64 {
            state: mix64(self.state ^ mix64(stream)),
        }
    }

    /// Returns the next raw 64-bit output.
    // The name mirrors the canonical SplitMix64 reference implementation;
    // this type is not an Iterator.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical SplitMix64 implementation
        // seeded with 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next(), 6457827717110365317);
        assert_eq!(rng.next(), 3203168211198807973);
        assert_eq!(rng.next(), 9817491932198370423);
    }

    #[test]
    fn deterministic_from_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn split_streams_differ_from_parent_and_each_other() {
        let root = SplitMix64::new(7);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let mut s1b = root.split(1);
        assert_ne!(s1.next(), s2.next());
        let mut s1c = root.split(1);
        assert_eq!(s1b.next(), s1c.next());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Not all bytes should be zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Spot check: distinct inputs give distinct outputs.
        let outs: Vec<u64> = (0u64..1000).map(mix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }
}
