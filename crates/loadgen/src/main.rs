//! `ldp-loadgen` — drive a listening collector with synthetic fleet
//! traffic and report throughput and ack-latency percentiles.
//!
//! ```text
//! ldp-loadgen --connect 127.0.0.1:7070 --mechanism sw-ems:eps=1,d=1024 \
//!     --connections 8 --frames 16 --reports-per-frame 512 --rate 0 \
//!     [--session PREFIX] [--window NAME] [--retry-budget-ms 15000]
//! ```
//!
//! `--rate` is the target aggregate reports/second (0 = as fast as acks
//! allow). Every frame waits for its ack, so the reported latency is the
//! collector's end-to-end decode → queue → absorb commit time.
//!
//! `--session PREFIX` switches to sequenced exactly-once sessions
//! (`PREFIX-0`, `PREFIX-1`, …): each connection survives collector
//! crashes and restarts by reconnecting with exponential backoff and
//! resuming from the server's dedup cursor, for at most
//! `--retry-budget-ms` of consecutive fruitless retrying.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ldp_collector::CollectorError;
use ldp_loadgen::{run, Plan};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage: ldp-loadgen --connect <addr> --mechanism <spec> \
         [--connections N] [--frames N] [--reports-per-frame N] \
         [--rate REPORTS_PER_SEC] [--seed N] \
         [--session PREFIX] [--window NAME] [--retry-budget-ms MS]"
    );
}

/// Minimal `--flag value` parser; every flag takes exactly one value.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, CollectorError> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let name = arg
            .strip_prefix("--")
            .ok_or_else(|| CollectorError::Spec(format!("unexpected argument {arg:?}")))?;
        let value = it
            .next()
            .ok_or_else(|| CollectorError::Spec(format!("--{name} requires a value")))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, CollectorError> {
    raw.parse()
        .map_err(|_| CollectorError::Spec(format!("cannot parse --{name} {raw:?}")))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    match try_main(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ldp-loadgen: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn try_main(args: &[String]) -> Result<(), CollectorError> {
    let mut addr: Option<String> = None;
    let mut plan = Plan::default();
    for (name, value) in parse_flags(args)? {
        match name.as_str() {
            "connect" => addr = Some(value),
            "mechanism" => plan.spec = value,
            "connections" => plan.connections = parse(&name, &value)?,
            "frames" => plan.frames_per_connection = parse(&name, &value)?,
            "reports-per-frame" => plan.reports_per_frame = parse(&name, &value)?,
            "rate" => plan.rate = parse(&name, &value)?,
            "seed" => plan.seed = parse(&name, &value)?,
            "session" => plan.session = Some(value),
            "window" => plan.window = Some(value),
            "retry-budget-ms" => {
                plan.retry_budget = std::time::Duration::from_millis(parse(&name, &value)?);
            }
            other => return Err(CollectorError::Spec(format!("unknown flag --{other}"))),
        }
    }
    let addr = addr.ok_or_else(|| CollectorError::Spec("--connect <addr> is required".into()))?;
    eprintln!(
        "driving {} over {} connections x {} frames x {} reports ({})",
        plan.total_reports(),
        plan.connections,
        plan.frames_per_connection,
        plan.reports_per_frame,
        plan.spec
    );
    let report = run(&addr, &plan)?;
    println!("connections       {:>12}", report.connections);
    println!("frames            {:>12}", report.frames);
    println!("rejected-frames   {:>12}", report.rejected_frames);
    println!("connect-attempts  {:>12}", report.connect_attempts);
    println!("reconnects        {:>12}", report.reconnects);
    println!("frames-resent     {:>12}", report.frames_resent);
    println!("busy-sheds        {:>12}", report.sheds);
    println!("evictions         {:>12}", report.evictions);
    println!("reports           {:>12}", report.reports);
    println!("elapsed-ms        {:>12}", report.elapsed.as_millis());
    println!("reports-per-sec   {:>12.1}", report.reports_per_sec);
    println!("ack-p50-us        {:>12}", report.ack_p50_us);
    println!("ack-p99-us        {:>12}", report.ack_p99_us);
    println!("ack-max-us        {:>12}", report.ack_max_us);
    Ok(())
}
