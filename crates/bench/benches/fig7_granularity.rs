//! Figure 7 harness benchmark: full SW-EMS trials at increasing
//! bucketization granularities (the EM cost is O(d̃·d) per iteration, so
//! this is the scaling-sensitive axis).

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_bench::{bench_dataset, BENCH_N};
use ldp_datasets::DatasetKind;
use ldp_metrics::wasserstein;
use ldp_numeric::SplitMix64;
use ldp_sw::{Reconstruction, SwPipeline};
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(8));
    let ds = bench_dataset(DatasetKind::Taxi, BENCH_N);
    for d in [256usize, 512, 1024] {
        let truth = ds.histogram(d).unwrap();
        group.bench_function(format!("sw_ems_d{d}"), |b| {
            let pipeline = SwPipeline::new(1.0, d).unwrap();
            let mut seed = 500u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SplitMix64::new(seed);
                let est = pipeline
                    .estimate(&ds.values, &Reconstruction::Ems, &mut rng)
                    .unwrap();
                wasserstein(&truth, &est).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
