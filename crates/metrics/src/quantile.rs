//! Quantile accuracy (paper §3.2): the mean absolute difference between
//! true and estimated quantile *positions*, averaged over the levels
//! `B = {10%, …, 90%}`.

use crate::error::MetricError;
use ldp_numeric::Histogram;

/// The paper's quantile levels: 10% through 90% in steps of 10%.
#[must_use]
pub fn paper_levels() -> Vec<f64> {
    (1..=9).map(|k| k as f64 / 10.0).collect()
}

/// Mean absolute quantile error over the given levels.
pub fn quantile_mae(
    truth: &Histogram,
    estimate: &Histogram,
    levels: &[f64],
) -> Result<f64, MetricError> {
    if truth.len() != estimate.len() {
        return Err(MetricError::GranularityMismatch {
            truth: truth.len(),
            estimate: estimate.len(),
        });
    }
    if levels.is_empty() {
        return Err(MetricError::InvalidParameter(
            "need at least one quantile level".into(),
        ));
    }
    if levels.iter().any(|&b| !(0.0..=1.0).contains(&b)) {
        return Err(MetricError::InvalidParameter(
            "quantile levels must lie in [0, 1]".into(),
        ));
    }
    let total: f64 = levels
        .iter()
        .map(|&b| (truth.quantile(b) - estimate.quantile(b)).abs())
        .sum();
    Ok(total / levels.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(probs: &[f64]) -> Histogram {
        Histogram::from_probs(probs.to_vec()).unwrap()
    }

    #[test]
    fn paper_levels_are_deciles() {
        let l = paper_levels();
        assert_eq!(l.len(), 9);
        assert!((l[0] - 0.1).abs() < 1e-12);
        assert!((l[8] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_zero_error() {
        let a = h(&[0.1, 0.4, 0.3, 0.2]);
        assert_eq!(quantile_mae(&a, &a, &paper_levels()).unwrap(), 0.0);
    }

    #[test]
    fn shifted_uniform_has_known_quantile_shift() {
        // Uniform on the first half vs uniform on the second half: every
        // quantile shifts by exactly 0.5.
        let a = h(&[0.5, 0.5, 0.0, 0.0]);
        let b = h(&[0.0, 0.0, 0.5, 0.5]);
        let e = quantile_mae(&a, &b, &paper_levels()).unwrap();
        assert!((e - 0.5).abs() < 1e-9, "e={e}");
    }

    #[test]
    fn validation() {
        let a = h(&[0.5, 0.5]);
        let b = h(&[0.25; 4]);
        assert!(quantile_mae(&a, &b, &paper_levels()).is_err());
        assert!(quantile_mae(&a, &a, &[]).is_err());
        assert!(quantile_mae(&a, &a, &[1.5]).is_err());
    }

    #[test]
    fn spiky_estimates_have_large_quantile_error() {
        // True distribution uniform; estimate concentrated at one point:
        // quantiles collapse to that point.
        let truth = h(&[0.25; 4]);
        let spike = h(&[0.0, 1.0, 0.0, 0.0]);
        let e = quantile_mae(&truth, &spike, &paper_levels()).unwrap();
        assert!(e > 0.1, "e={e}");
    }
}
