//! Two-phase variance estimation (paper §6.3).
//!
//! SR and PM estimate means; the paper extends them to variances by
//! splitting the population: half the users estimate the mean `μ̂`; the
//! aggregator broadcasts `μ̂`, and each remaining user reports the squared
//! deviation `(vᵢ − μ̂)²` through the same mechanism, whose average
//! estimates `E[(v − μ̂)²] ≈ σ²`.
//!
//! Values live in the dataset domain `[0, 1]`; deviations `(v − μ̂)² ∈ [0, 1]`
//! are mapped to the mechanisms' `[-1, 1]` domain and back.

use crate::error::MeanError;
use crate::pm::Pm;
use crate::sr::{from_signed, to_signed, Sr};
use rand::Rng;

/// Which base mechanism carries the reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeanMechanism {
    /// Stochastic Rounding.
    Sr,
    /// Piecewise Mechanism.
    Pm,
}

/// A mean + variance estimation protocol over values in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct MeanVariance {
    mechanism: MeanMechanism,
    eps: f64,
}

/// Result of the two-phase protocol.
#[derive(Debug, Clone, Copy)]
pub struct MeanVarianceEstimate {
    /// Estimated mean in `[0, 1]` (clamped).
    pub mean: f64,
    /// Estimated variance (clamped to be non-negative).
    pub variance: f64,
}

impl MeanVariance {
    /// Creates the protocol.
    pub fn new(mechanism: MeanMechanism, eps: f64) -> Result<Self, MeanError> {
        // Validate eps eagerly via a mechanism constructor.
        match mechanism {
            MeanMechanism::Sr => {
                Sr::new(eps)?;
            }
            MeanMechanism::Pm => {
                Pm::new(eps)?;
            }
        }
        Ok(MeanVariance { mechanism, eps })
    }

    /// The underlying mechanism.
    #[must_use]
    pub fn mechanism(&self) -> MeanMechanism {
        self.mechanism
    }

    /// Estimates only the mean, using the full population (what Figure 4's
    /// first row evaluates: "SR and PM devote all privacy budget to estimate
    /// mean").
    pub fn estimate_mean<R: Rng + ?Sized>(
        &self,
        values01: &[f64],
        rng: &mut R,
    ) -> Result<f64, MeanError> {
        let signed: Vec<f64> = values01
            .iter()
            .map(|&v| to_signed(v.clamp(0.0, 1.0)))
            .collect();
        let est = self.run_mechanism(&signed, rng)?;
        Ok(from_signed(est.clamp(-1.0, 1.0)))
    }

    /// Runs the full two-phase protocol: the first half of the (shuffled
    /// by the caller if needed) population estimates the mean, the second
    /// half the variance.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        values01: &[f64],
        rng: &mut R,
    ) -> Result<MeanVarianceEstimate, MeanError> {
        if values01.len() < 2 {
            return Err(MeanError::InvalidParameter(
                "variance protocol needs at least 2 users".into(),
            ));
        }
        // Random 50/50 split: each user flips a fair coin for its phase.
        let mut phase1 = Vec::with_capacity(values01.len() / 2 + 1);
        let mut phase2 = Vec::with_capacity(values01.len() / 2 + 1);
        for &v in values01 {
            if rng.gen::<bool>() {
                phase1.push(v.clamp(0.0, 1.0));
            } else {
                phase2.push(v.clamp(0.0, 1.0));
            }
        }
        if phase1.is_empty() || phase2.is_empty() {
            // Degenerate split (only possible for tiny populations).
            phase1 = values01[..values01.len() / 2].to_vec();
            phase2 = values01[values01.len() / 2..].to_vec();
        }

        let signed1: Vec<f64> = phase1.iter().map(|&v| to_signed(v)).collect();
        let mean_signed = self.run_mechanism(&signed1, rng)?.clamp(-1.0, 1.0);
        let mean = from_signed(mean_signed);

        // Phase 2: report (v - μ̂)² ∈ [0, 1] through the mechanism.
        let signed2: Vec<f64> = phase2
            .iter()
            .map(|&v| {
                let dev = (v - mean) * (v - mean);
                to_signed(dev.clamp(0.0, 1.0))
            })
            .collect();
        let var_signed = self.run_mechanism(&signed2, rng)?.clamp(-1.0, 1.0);
        let variance = from_signed(var_signed).max(0.0);

        Ok(MeanVarianceEstimate { mean, variance })
    }

    fn run_mechanism<R: Rng + ?Sized>(
        &self,
        signed: &[f64],
        rng: &mut R,
    ) -> Result<f64, MeanError> {
        match self.mechanism {
            MeanMechanism::Sr => Sr::new(self.eps)?.run(signed, rng),
            MeanMechanism::Pm => Pm::new(self.eps)?.run(signed, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::stats;
    use ldp_numeric::SplitMix64;

    fn workload() -> Vec<f64> {
        // Bimodal values in [0, 1]: mean 0.5, variance 0.09 + small term.
        (0..100_000)
            .map(|i| if i % 2 == 0 { 0.2 } else { 0.8 })
            .collect()
    }

    #[test]
    fn construction_validates() {
        assert!(MeanVariance::new(MeanMechanism::Sr, 1.0).is_ok());
        assert!(MeanVariance::new(MeanMechanism::Pm, 0.0).is_err());
    }

    #[test]
    fn mean_estimation_is_accurate_for_both_mechanisms() {
        for mech in [MeanMechanism::Sr, MeanMechanism::Pm] {
            let proto = MeanVariance::new(mech, 2.0).unwrap();
            let mut rng = SplitMix64::new(161);
            let est = proto.estimate_mean(&workload(), &mut rng).unwrap();
            assert!((est - 0.5).abs() < 0.02, "{mech:?}: {est}");
        }
    }

    #[test]
    fn variance_estimation_is_accurate_for_both_mechanisms() {
        let values = workload();
        let truth = stats::variance(&values);
        for mech in [MeanMechanism::Sr, MeanMechanism::Pm] {
            let proto = MeanVariance::new(mech, 2.0).unwrap();
            let mut rng = SplitMix64::new(162);
            let est = proto.estimate(&values, &mut rng).unwrap();
            assert!(
                (est.variance - truth).abs() < 0.03,
                "{mech:?}: {} vs {truth}",
                est.variance
            );
            assert!((est.mean - 0.5).abs() < 0.03);
        }
    }

    #[test]
    fn estimates_are_clamped_to_valid_ranges() {
        // Tiny populations with extreme noise must still give mean in [0,1]
        // and non-negative variance.
        let proto = MeanVariance::new(MeanMechanism::Sr, 0.1).unwrap();
        for seed in 0..50 {
            let mut rng = SplitMix64::new(163 + seed);
            let est = proto.estimate(&[0.0, 1.0, 0.5, 0.2], &mut rng).unwrap();
            assert!((0.0..=1.0).contains(&est.mean));
            assert!(est.variance >= 0.0);
        }
    }

    #[test]
    fn rejects_tiny_populations() {
        let proto = MeanVariance::new(MeanMechanism::Pm, 1.0).unwrap();
        let mut rng = SplitMix64::new(164);
        assert!(proto.estimate(&[0.5], &mut rng).is_err());
    }

    #[test]
    fn out_of_range_values_are_clamped_not_rejected() {
        // Dataset preprocessing clamps, mirroring the paper's extraction
        // step; the protocol should tolerate slight overshoot.
        let proto = MeanVariance::new(MeanMechanism::Sr, 1.0).unwrap();
        let mut rng = SplitMix64::new(165);
        let est = proto.estimate_mean(&[1.2, -0.1, 0.5, 0.5], &mut rng);
        assert!(est.is_ok());
    }
}
