//! `ldp-reactor` — minimal epoll reactor primitives for the collector's
//! nonblocking serve path.
//!
//! The collector must multiplex hundreds of framed TCP sessions over a
//! small thread set (the paper's setting is a fleet of millions of
//! reporting devices). This crate supplies exactly the event-loop
//! machinery that takes, nothing more:
//!
//! - [`Epoll`] — a thin safe wrapper over one `epoll` instance
//!   (create1/ctl/pwait issued as direct syscalls in [`sys`]; the
//!   workspace vendors no `libc`), registering fds edge- or
//!   level-triggered under caller-chosen `u64` tokens;
//! - [`Waker`] — an eventfd for cross-thread nudges (absorber
//!   completions, newly accepted connections, shutdown);
//! - [`Poller`] — an [`Epoll`] with its [`Waker`] pre-registered under a
//!   reserved token, the per-reactor-thread bundle;
//! - [`Slab`] — generation-tagged connection slots whose tokens double
//!   as epoll registration tokens (stale events miss, never mis-land);
//! - [`TimerWheel`] — `(token, kind)` deadlines with lazy deletion, for
//!   idle timeouts, ack deadlines, and shutdown grace.
//!
//! This is the only workspace crate that uses `unsafe` (the syscall
//! layer and two fd-handle `Send`/`Sync` assertions); everything above
//! it — including the collector's framing state machine — stays under
//! `#![forbid(unsafe_code)]`.
//!
//! # Examples
//!
//! A slot wakes for a readable socket; another thread nudges the loop:
//!
//! ```
//! use ldp_reactor::{Events, Interest, Poller};
//! use std::io::Write;
//! use std::net::{TcpListener, TcpStream};
//! use std::time::Duration;
//!
//! let poller = Poller::new().unwrap();
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
//! let (server, _) = listener.accept().unwrap();
//! server.set_nonblocking(true).unwrap();
//! poller.add(&server, 7, Interest::edge_rw()).unwrap();
//!
//! client.write_all(b"ping").unwrap();
//! let mut events = Events::with_capacity(8);
//! poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
//! assert!(events.iter().any(|e| e.token == 7 && e.readable));
//!
//! let waker = poller.waker();
//! std::thread::spawn(move || waker.wake()).join().unwrap();
//! let woken = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
//! assert!(woken);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "ldp-reactor drives Linux epoll via direct syscalls and supports \
     x86_64/aarch64 only; use `serve --threads-per-conn` elsewhere"
);

mod epoll;
mod slab;
pub mod sys;
mod timer;
mod waker;

pub use epoll::{Epoll, Event, Events, Interest};
pub use slab::Slab;
pub use timer::TimerWheel;
pub use waker::Waker;

use std::io;
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

/// The token [`Poller`] reserves for its own [`Waker`]. Slab tokens can
/// never collide with it: their generation half wraps at 32 bits, so a
/// real token is always `< u64::MAX`.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One reactor thread's event source: an [`Epoll`] with a [`Waker`]
/// registered under [`WAKE_TOKEN`].
///
/// [`Poller::wait`] hides the waker bookkeeping: it drains the eventfd,
/// filters the wake event out of the caller-visible set, and returns
/// whether a wake was among the reasons the loop is running — so the
/// loop body can check its mailboxes exactly when someone rang.
pub struct Poller {
    epoll: Epoll,
    waker: Arc<Waker>,
}

impl Poller {
    /// A fresh epoll instance with its waker registered.
    pub fn new() -> io::Result<Self> {
        let epoll = Epoll::new()?;
        let waker = Arc::new(Waker::new()?);
        epoll.add(waker.fd(), WAKE_TOKEN, Interest::level_read())?;
        Ok(Poller { epoll, waker })
    }

    /// A cloneable handle other threads use to nudge this poller.
    #[must_use]
    pub fn waker(&self) -> Arc<Waker> {
        Arc::clone(&self.waker)
    }

    /// Registers `fd` under `token` (which must not be [`WAKE_TOKEN`]).
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert_ne!(token, WAKE_TOKEN);
        self.epoll.add(fd.as_raw_fd(), token, interest)
    }

    /// Changes an existing registration.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.modify(fd.as_raw_fd(), token, interest)
    }

    /// Removes a registration (closing the fd also deregisters it).
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.epoll.delete(fd.as_raw_fd())
    }

    /// Waits for readiness, a wake, or `timeout`. Returns `true` when a
    /// wake was posted (the wake event itself never appears in
    /// `events`).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<bool> {
        self.epoll.wait(events, timeout)?;
        let woken = events.iter().any(|e| e.token == WAKE_TOKEN);
        if woken {
            self.waker.drain();
        }
        Ok(woken)
    }
}

/// Iterate [`Events`] skipping the reserved wake token — the loop-body
/// companion to [`Poller::wait`].
pub fn ready_events(events: &Events) -> impl Iterator<Item = Event> + '_ {
    events.iter().filter(|e| e.token != WAKE_TOKEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn readable_socket_wakes_its_token() {
        let poller = Poller::new().unwrap();
        let (mut client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, 42, Interest::edge_rw()).unwrap();
        client.write_all(b"hello").unwrap();
        let mut events = Events::with_capacity(4);
        let woken = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!woken);
        let ev: Vec<Event> = ready_events(&events).collect();
        assert!(ev.iter().any(|e| e.token == 42 && e.readable));
    }

    #[test]
    fn edge_triggered_reports_once_until_drained() {
        let poller = Poller::new().unwrap();
        let (mut client, mut server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, 1, Interest::edge_rw()).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(ready_events(&events).filter(|e| e.readable).count(), 1);
        // Without draining, the edge does not re-fire.
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(ready_events(&events).count(), 0);
        // Drain, write again: a fresh edge.
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(n, 1);
        client.write_all(b"y").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(ready_events(&events).any(|e| e.token == 1 && e.readable));
    }

    #[test]
    fn peer_close_is_visible_as_readable() {
        let poller = Poller::new().unwrap();
        let (client, server) = pair();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, 9, Interest::edge_rw()).unwrap();
        drop(client);
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(ready_events(&events).any(|e| e.token == 9 && e.readable));
    }

    #[test]
    fn waker_crosses_threads_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            for _ in 0..100 {
                waker.wake();
            }
        });
        let mut events = Events::with_capacity(4);
        let woken = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(woken);
        assert_eq!(ready_events(&events).count(), 0, "wake token is filtered");
        handle.join().unwrap();
        // Drained: the next wait times out instead of spinning.
        let started = Instant::now();
        let woken = poller
            .wait(&mut events, Some(Duration::from_millis(60)))
            .unwrap();
        assert!(!woken);
        assert!(started.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn wait_times_out_when_idle() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(4);
        let started = Instant::now();
        let woken = poller
            .wait(&mut events, Some(Duration::from_millis(80)))
            .unwrap();
        assert!(!woken);
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(70));
    }
}
