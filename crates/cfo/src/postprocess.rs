//! Consistency post-processing of noisy frequency estimates.
//!
//! LDP estimates are unbiased but noisy: many entries come back negative and
//! they rarely sum exactly to 1. The paper (§4.1, citing Wang et al. '19)
//! uses **Norm-Sub**: clamp negatives to zero and subtract a uniform amount
//! from the remaining positive entries so the total matches, repeating until
//! stable. The result is a valid probability distribution and is the
//! projection used both after binning and inside HH-ADMM (`ΠN+`).

/// Norm-Sub: projects `estimates` onto the simplex
/// `{x : x ≥ 0, Σx = target}` using the iterative clamp-and-shift scheme.
///
/// Returns the projected vector. If every entry is non-positive, mass is
/// assigned uniformly (the only sensible simplex point in that degenerate
/// case).
#[must_use]
pub fn norm_sub(estimates: &[f64], target: f64) -> Vec<f64> {
    let n = estimates.len();
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(target >= 0.0);
    let mut x: Vec<f64> = estimates.to_vec();
    // At each round: entries currently clamped at zero stay zero; the
    // positive ones are shifted by a common delta so the total hits target.
    // Each round strictly grows the clamped set, so at most n rounds.
    for _ in 0..=n {
        let mut positive = 0usize;
        let mut pos_sum = 0.0;
        for &v in &x {
            if v > 0.0 {
                positive += 1;
                pos_sum += v;
            }
        }
        if positive == 0 {
            return vec![target / n as f64; n];
        }
        let delta = (pos_sum - target) / positive as f64;
        let mut any_new_negative = false;
        for v in &mut x {
            if *v > 0.0 {
                *v -= delta;
                if *v < 0.0 {
                    any_new_negative = true;
                }
            } else {
                *v = 0.0;
            }
        }
        if !any_new_negative {
            for v in &mut x {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            return x;
        }
        for v in &mut x {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }
    x
}

/// Clamp-to-zero followed by rescaling so the total is `target`
/// ("Norm-Mul" in Wang et al. '19). A cheaper but biased alternative to
/// [`norm_sub`], exposed for the ablation benches.
#[must_use]
pub fn norm_mul(estimates: &[f64], target: f64) -> Vec<f64> {
    let n = estimates.len();
    if n == 0 {
        return Vec::new();
    }
    let mut x: Vec<f64> = estimates.iter().map(|&v| v.max(0.0)).collect();
    let total: f64 = x.iter().sum();
    if total <= 0.0 {
        return vec![target / n as f64; n];
    }
    for v in &mut x {
        *v *= target / total;
    }
    x
}

/// Simple clamp of negatives without renormalization; useful when the
/// caller renormalizes later.
#[must_use]
pub fn clamp_nonnegative(estimates: &[f64]) -> Vec<f64> {
    estimates.iter().map(|&v| v.max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_simplex(x: &[f64], target: f64) {
        assert!(x.iter().all(|&v| v >= 0.0), "negative entry in {x:?}");
        let sum: f64 = x.iter().sum();
        assert!((sum - target).abs() < 1e-9, "sum {sum} != {target}");
    }

    #[test]
    fn norm_sub_already_valid_is_untouched() {
        let x = [0.2, 0.3, 0.5];
        let y = norm_sub(&x, 1.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_sub_fixes_negatives_and_sum() {
        let x = [0.5, -0.2, 0.4, 0.6, -0.1];
        let y = norm_sub(&x, 1.0);
        assert_simplex(&y, 1.0);
        // Negative entries end at zero.
        assert_eq!(y[1], 0.0);
        assert_eq!(y[4], 0.0);
        // Order of the positive entries is preserved.
        assert!(y[3] > y[0] && y[0] > y[2] - 0.2);
    }

    #[test]
    fn norm_sub_cascading_clamps() {
        // The first subtraction pushes 0.05 negative; needs a second round.
        let x = [0.05, 0.9, 0.9];
        let y = norm_sub(&x, 1.0);
        assert_simplex(&y, 1.0);
        assert_eq!(y[0], 0.0);
        assert!((y[1] - 0.5).abs() < 1e-9);
        assert!((y[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn norm_sub_all_negative_gives_uniform() {
        let y = norm_sub(&[-0.5, -0.1, -0.2, -0.2], 1.0);
        assert_simplex(&y, 1.0);
        for &v in &y {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn norm_sub_respects_custom_target() {
        let y = norm_sub(&[3.0, -1.0, 2.0], 4.0);
        assert_simplex(&y, 4.0);
    }

    #[test]
    fn norm_sub_empty_input() {
        assert!(norm_sub(&[], 1.0).is_empty());
    }

    #[test]
    fn norm_sub_is_idempotent() {
        let x = [0.4, -0.3, 0.8, 0.2, -0.05];
        let once = norm_sub(&x, 1.0);
        let twice = norm_sub(&once, 1.0);
        for (a, b) in once.iter().zip(&twice) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn norm_mul_scales_positives() {
        let y = norm_mul(&[0.3, -0.5, 0.1], 1.0);
        assert_simplex(&y, 1.0);
        assert_eq!(y[1], 0.0);
        assert!((y[0] - 0.75).abs() < 1e-12);
        assert!((y[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn norm_mul_all_negative_gives_uniform() {
        let y = norm_mul(&[-1.0, -2.0], 1.0);
        assert_simplex(&y, 1.0);
    }

    #[test]
    fn clamp_keeps_positives() {
        assert_eq!(clamp_nonnegative(&[1.0, -2.0, 0.5]), vec![1.0, 0.0, 0.5]);
    }

    #[test]
    fn norm_sub_matches_euclidean_projection_property() {
        // Norm-sub on a vector summing to the target with some negatives is
        // exactly the Euclidean projection onto the simplex; check the KKT
        // characterization: positive entries share a common shift.
        let x = [0.7, -0.3, 0.45, 0.15];
        let y = norm_sub(&x, 1.0);
        let mut shifts: Vec<f64> = x
            .iter()
            .zip(&y)
            .filter(|&(_, &yi)| yi > 0.0)
            .map(|(xi, yi)| xi - yi)
            .collect();
        shifts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert_eq!(shifts.len(), 1, "positive entries must share one shift");
    }
}
