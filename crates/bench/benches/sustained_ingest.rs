//! End-to-end serve-path throughput: a live collector behind a loopback
//! TCP listener, driven by `ldp-loadgen` over concurrent framed sessions.
//!
//! Reported series (parsed by `scripts/bench_record.sh` into the
//! `sustained_ingest_*` sections of `BENCH_em.json` — informational, not
//! regression-gated, because loopback TCP timing is noisy):
//!
//! - `sustained/ingest_c{C}_n{N}`: one full collection window — accept C
//!   concurrent sessions, decode frames on connection threads, commit
//!   through the bounded queue, ack every frame — for N total reports of
//!   the paper's `sw-ems` mechanism. `c1` is the serial baseline the
//!   concurrent numbers are read against.
//!
//! `BENCH_SMOKE=1` switches to a seconds-long configuration for CI.
//! Frames are pre-generated outside the measured window; the measurement
//! is the serve path, not the client-side randomizer.

use criterion::{criterion_group, criterion_main, Criterion};
use ldp_collector::build_session;
use ldp_collector::server::{serve, ServeOptions, SnapshotPolicy};
use ldp_loadgen::{generate_frames, run_frames, Plan};
use std::net::TcpListener;
use std::time::Duration;

const SPEC: &str = "sw-ems:eps=1,d=256";

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").as_deref() == Ok("1")
}

/// One full window: serve `connections` sessions of pre-generated frames
/// and return the absorbed report count (sanity-checked by the caller).
fn window(frames: &[Vec<String>], reports_per_frame: usize) -> u64 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let connections = frames.len();
    let server = std::thread::spawn(move || {
        let mut session = build_session(SPEC).unwrap();
        let policy = SnapshotPolicy {
            path: None,
            every: 0,
            keep: 0,
        };
        let options = ServeOptions {
            max_connections: connections,
            connections: connections as u64,
            ..ServeOptions::default()
        };
        serve(&listener, session.as_mut(), &policy, &options).unwrap();
        session.count()
    });
    let report = run_frames(&addr, frames, reports_per_frame, Duration::ZERO).unwrap();
    let count = server.join().unwrap();
    assert_eq!(count, report.reports, "bench must not lose reports");
    count
}

fn bench_sustained(c: &mut Criterion) {
    let mut group = c.benchmark_group("sustained");
    let (frames_per_connection, reports_per_frame) = if smoke() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(100))
            .measurement_time(Duration::from_millis(400));
        (2, 128)
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
        (8, 512)
    };

    for connections in [1usize, 8, 64] {
        // The c64 point probes session-count scaling on the reactor, not
        // raw volume: shrink the per-connection load so one iteration
        // stays comparable to the c8 point.
        let fpc = if connections == 64 {
            (frames_per_connection / 4).max(1)
        } else {
            frames_per_connection
        };
        let plan = Plan {
            spec: SPEC.into(),
            connections,
            frames_per_connection: fpc,
            reports_per_frame,
            seed: 42,
            rate: 0.0,
            ..Plan::default()
        };
        let frames = generate_frames(&plan).unwrap();
        let total = plan.total_reports();
        group.bench_function(format!("ingest_c{connections}_n{total}"), |b| {
            b.iter(|| window(&frames, reports_per_frame))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sustained);
criterion_main!(benches);
