//! Batch and streaming summary statistics.

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice. Returns 0.0 for slices shorter than 2.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected). Returns 0.0 for slices
/// shorter than 2.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Mean of `|x|` over a slice; the MAE when `xs` holds signed errors.
#[must_use]
pub fn mean_absolute(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|x| x.abs()).sum::<f64>() / xs.len() as f64
}

/// Numerically stable streaming mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Running::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current population variance (0.0 with fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Current sample standard deviation (0.0 with fewer than 2
    /// observations).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        let bessel = std_dev(&xs);
        assert!((bessel - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(mean_absolute(&[]), 0.0);
    }

    #[test]
    fn mean_absolute_of_signed_errors() {
        assert!((mean_absolute(&[-1.0, 1.0, -3.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [0.3, -1.2, 5.5, 2.0, 2.0, -0.7];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert_eq!(r.count(), xs.len() as u64);
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.variance() - variance(&xs)).abs() < 1e-12);
        assert!((r.std_dev() - std_dev(&xs)).abs() < 1e-12);
    }

    #[test]
    fn running_is_stable_for_large_offsets() {
        let mut r = Running::new();
        for i in 0..1000 {
            r.push(1e9 + (i % 2) as f64);
        }
        assert!((r.variance() - 0.25).abs() < 1e-6);
    }
}
