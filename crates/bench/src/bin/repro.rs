//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [targets] [options]
//!
//! targets:  table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 all
//!           ablation-em-threshold ablation-reconstruction ablation-smoothing ablations
//!           (default: all)
//! options:
//!   --scale X       fraction of the paper's population sizes (default 0.05)
//!   --repeats N     trials per point (default 5; paper used 100)
//!   --eps a,b,c     epsilon axis (default 0.5,1.0,1.5,2.0,2.5)
//!   --seed S        master seed (default 0xC0FFEE)
//!   --threads N     worker threads (default: all cores)
//!   --datasets a,b  subset of beta,taxi,income,retirement (default all)
//!   --out DIR       directory for CSV output (default results/)
//!   --full          paper-scale run: --scale 1.0 --repeats 100
//!   --smoke         tiny CI run
//! ```

use ldp_datasets::DatasetKind;
use ldp_experiments::figures;
use ldp_experiments::{ExperimentConfig, Figure};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    targets: Vec<String>,
    config: ExperimentConfig,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ExperimentConfig::default();
    let mut targets = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "table2"
            | "fig1"
            | "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "all"
            | "ablation-em-threshold"
            | "ablation-reconstruction"
            | "ablation-smoothing"
            | "ablations" => {
                targets.push(arg.to_string());
            }
            "--scale" => config.scale = parse_f64(&take_value(&mut i)?)?,
            "--repeats" => config.repeats = parse_usize(&take_value(&mut i)?)?,
            "--seed" => config.seed = parse_u64(&take_value(&mut i)?)?,
            "--threads" => config.threads = parse_usize(&take_value(&mut i)?)?.max(1),
            "--eps" => {
                config.epsilons = take_value(&mut i)?
                    .split(',')
                    .map(parse_f64)
                    .collect::<Result<_, _>>()?;
            }
            "--datasets" => {
                config.datasets = take_value(&mut i)?
                    .split(',')
                    .map(parse_dataset)
                    .collect::<Result<_, _>>()?;
            }
            "--out" => out_dir = PathBuf::from(take_value(&mut i)?),
            "--full" => {
                config.scale = 1.0;
                config.repeats = 100;
            }
            "--smoke" => {
                let smoke = ExperimentConfig::smoke();
                config.epsilons = smoke.epsilons;
                config.repeats = smoke.repeats;
                config.scale = smoke.scale;
                config.datasets = smoke.datasets;
            }
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        // Expand `all` in place so explicit extra targets (e.g. `ablations`)
        // survive the expansion.
        targets.retain(|t| t != "all");
        for t in [
            "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        ] {
            if !targets.iter().any(|x| x == t) {
                targets.push(t.to_string());
            }
        }
    }
    if targets.iter().any(|t| t == "ablations") {
        targets.retain(|t| t != "ablations");
        for t in [
            "ablation-em-threshold",
            "ablation-reconstruction",
            "ablation-smoothing",
        ] {
            targets.push(t.to_string());
        }
    }
    Ok(Args {
        targets,
        config,
        out_dir,
    })
}

const HELP: &str = "repro — regenerate the SIGMOD 2020 SW-LDP evaluation
usage: repro [table2|fig1..fig7|all]... [--scale X] [--repeats N] [--eps a,b,c] \
[--seed S] [--threads N] [--datasets beta,taxi,income,retirement] [--out DIR] [--full] [--smoke]";

fn parse_f64(s: &str) -> Result<f64, String> {
    s.trim().parse().map_err(|_| format!("not a number: {s}"))
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("not an integer: {s}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("not an integer: {s}"))
    } else {
        t.parse().map_err(|_| format!("not an integer: {s}"))
    }
}

fn parse_dataset(s: &str) -> Result<DatasetKind, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "beta" => Ok(DatasetKind::Beta),
        "taxi" => Ok(DatasetKind::Taxi),
        "income" => Ok(DatasetKind::Income),
        "retirement" => Ok(DatasetKind::Retirement),
        other => Err(format!(
            "unknown dataset {other} (expected beta, taxi, income, retirement)"
        )),
    }
}

fn emit(figure: &Figure, out_dir: &Path) {
    println!("{}", figure.render_text());
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(format!("{}.csv", figure.id));
    match std::fs::write(&path, figure.render_csv()) {
        Ok(()) => println!("  [csv written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# sw-ldp reproduction run: scale={} repeats={} eps={:?} datasets={:?} threads={}",
        args.config.scale,
        args.config.repeats,
        args.config.epsilons,
        args.config
            .datasets
            .iter()
            .map(DatasetKind::name)
            .collect::<Vec<_>>(),
        args.config.threads,
    );
    for target in &args.targets {
        let start = Instant::now();
        let result = match target.as_str() {
            "table2" => {
                println!("{}", figures::table2());
                continue;
            }
            "fig1" => figures::fig1(&args.config),
            "fig2" => figures::fig2(&args.config),
            "fig3" => figures::fig3(&args.config),
            "fig4" => figures::fig4(&args.config),
            "fig5" => figures::fig5(&args.config),
            "fig6" => figures::fig6(&args.config),
            "fig7" => figures::fig7(&args.config),
            "ablation-em-threshold" => {
                ldp_experiments::ablations::ablation_em_threshold(&args.config)
            }
            "ablation-reconstruction" => {
                ldp_experiments::ablations::ablation_reconstruction(&args.config)
            }
            "ablation-smoothing" => ldp_experiments::ablations::ablation_smoothing(&args.config),
            other => {
                eprintln!("error: unknown target {other}");
                return ExitCode::FAILURE;
            }
        };
        match result {
            Ok(figure) => {
                emit(&figure, &args.out_dir);
                println!(
                    "  [{} finished in {:.1}s]\n",
                    target,
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("error while running {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
