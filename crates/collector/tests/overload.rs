//! Overload suite: graceful degradation under pressure.
//!
//! Four layers of drill, all asserting the same posture — an overloaded
//! collector **sheds loudly and early** (`!busy <retry-ms>`) instead of
//! queueing invisibly, stays inside its configured memory budget, and a
//! panicked pipeline stage is contained by the supervisor with a durable
//! final snapshot, never a wedge:
//!
//! 1. socket-level shed semantics: admission, quota, per-connection
//!    rate, and the frame-size cap, each observed as raw bytes;
//! 2. a sequenced fleet at twice the admission *and* rate capacity,
//!    with faults at the shed/evict seams, finishing bit-identical to a
//!    fault-free serial ingest;
//! 3. a deliberately panicked absorber (`LDP_FAULTS=absorb=panic`)
//!    contained with a clear error and a snapshot covering every acked
//!    frame, proven by restart-and-resume;
//! 4. a panicked snapshot writer restarted in place — and, past the
//!    restart budget, a loud failure that still wrote a final snapshot.

use ldp_collector::server::{serve, write_frame, ServeOptions, SnapshotPolicy};
use ldp_collector::{build_session, faults, protocol, CollectorError};
use ldp_loadgen::{generate_frames, run, Plan};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The fault schedule is process-global; every test that runs a serve
/// loop holds this lock so a concurrent test's schedule is never
/// consumed by this one's failpoints.
static FAULTS: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldp-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn no_snapshots() -> SnapshotPolicy {
    SnapshotPolicy {
        path: None,
        every: 0,
        keep: 0,
    }
}

/// Serial reference: one session ingesting every generated frame in
/// order; exact merges make any faulted run comparable bit for bit.
fn reference_finalize(spec: &str, frames: &[Vec<String>]) -> (String, u64) {
    let mut session = build_session(spec).unwrap();
    for conn in frames {
        for frame in conn {
            session.ingest_text(frame).unwrap();
        }
    }
    (session.finalize_text().unwrap(), session.count())
}

fn read_ack(stream: &mut TcpStream) -> u8 {
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack).unwrap();
    ack[0]
}

/// Reads a 5-byte `!busy` shed frame and returns the retry hint in ms.
fn read_busy_hint(stream: &mut TcpStream) -> u32 {
    let mut raw = [0u8; 5];
    stream.read_exact(&mut raw).unwrap();
    assert_eq!(raw[0], protocol::BUSY_BYTE, "expected a !busy shed frame");
    protocol::decode_busy_ms([raw[1], raw[2], raw[3], raw[4]])
}

/// Chunks one generated log into `n`-line frame payloads.
fn frames_of(log: &str, n: usize) -> Vec<String> {
    log.lines()
        .collect::<Vec<_>>()
        .chunks(n)
        .map(|c| c.join("\n"))
        .collect()
}

#[test]
fn a_full_fleet_sheds_at_accept_with_the_configured_retry_hint() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = ServeOptions {
        max_connections: 1,
        busy_retry: Duration::from_millis(150),
        ..ServeOptions::default() // connections: 0 — until shutdown
    };
    let shutdown = Arc::clone(&options.shutdown);
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let summary = serve(&listener, session.as_mut(), &no_snapshots(), &options).unwrap();
        (summary, session.count())
    });

    // A takes the only slot and keeps its session open mid-stream.
    let generator = build_session("grr:eps=1,d=8").unwrap();
    let log = generator.gen_reports(20, 31).unwrap();
    let mut a = TcpStream::connect(addr).unwrap();
    write_frame(&mut a, &log).unwrap();
    assert_eq!(read_ack(&mut a), b'+');

    // B arrives while the fleet is full: not backlog purgatory but an
    // explicit 5-byte shed carrying the operator's --busy-retry-ms.
    let mut b = TcpStream::connect(addr).unwrap();
    assert_eq!(read_busy_hint(&mut b), 150);
    let mut sink = [0u8; 1];
    assert_eq!(b.read(&mut sink).unwrap(), 0, "shed connection is closed");
    drop(b);

    // A's session was never disturbed by the shed next door.
    a.write_all(&0u32.to_be_bytes()).unwrap();
    assert_eq!(read_ack(&mut a), b'+');
    drop(a);

    shutdown.store(true, Ordering::SeqCst);
    let (summary, count) = server.join().unwrap();
    assert_eq!(summary.admission_sheds, 1);
    assert_eq!(summary.accepted, 1, "a shed connection is not an accept");
    assert_eq!(summary.completed, 1);
    assert_eq!(count, 20);
}

#[test]
fn a_met_report_quota_sheds_new_connections_but_not_admitted_ones() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = ServeOptions {
        report_quota: 50,
        busy_retry: Duration::from_millis(120),
        ..ServeOptions::default()
    };
    let shutdown = Arc::clone(&options.shutdown);
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let summary = serve(&listener, session.as_mut(), &no_snapshots(), &options).unwrap();
        (summary, session.count())
    });

    // An admitted session may finish past the quota: the quota gates
    // *admission*, it never truncates a stream mid-flight.
    let generator = build_session("grr:eps=1,d=8").unwrap();
    let log = generator.gen_reports(60, 37).unwrap();
    let mut a = TcpStream::connect(addr).unwrap();
    for frame in frames_of(&log, 20) {
        write_frame(&mut a, &frame).unwrap();
        assert_eq!(read_ack(&mut a), b'+', "admitted sessions finish");
    }
    a.write_all(&0u32.to_be_bytes()).unwrap();
    assert_eq!(read_ack(&mut a), b'+');
    drop(a);

    // Give the acceptor a tick to observe the crossed quota, then probe.
    std::thread::sleep(Duration::from_millis(300));
    let mut b = TcpStream::connect(addr).unwrap();
    assert_eq!(read_busy_hint(&mut b), 120);
    drop(b);

    shutdown.store(true, Ordering::SeqCst);
    let (summary, count) = server.join().unwrap();
    assert_eq!(summary.quota_sheds, 1);
    assert_eq!(summary.completed, 1);
    assert_eq!(count, 60, "the admitted session's tail is never dropped");
}

#[test]
fn an_over_rate_frame_is_shed_mid_stream_and_safely_resent() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = ServeOptions {
        connections: 1,
        max_rps_per_conn: 20.0,
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let summary = serve(&listener, session.as_mut(), &no_snapshots(), &options).unwrap();
        (summary, session.count())
    });

    let generator = build_session("grr:eps=1,d=8").unwrap();
    let log = generator.gen_reports(120, 41).unwrap();
    let frames = frames_of(&log, 60);
    let mut stream = TcpStream::connect(addr).unwrap();

    // Frame 1 drains the whole burst allowance; it is absorbed in full
    // (the clamp caps the *charge*, never truncates the payload).
    write_frame(&mut stream, &frames[0]).unwrap();
    assert_eq!(read_ack(&mut stream), b'+');

    // Frame 2 arrives with an empty bucket: shed mid-stream with a hint,
    // the connection stays open, and nothing of the frame was absorbed.
    write_frame(&mut stream, &frames[1]).unwrap();
    let hint = read_busy_hint(&mut stream);
    assert!(
        (500..=1_500).contains(&hint),
        "a drained 20-token bucket refills in ~1s, hint said {hint}ms"
    );

    // Honoring the hint makes the very same bytes admissible: the shed
    // is a *pause*, not a reject, so a blind resend is always safe.
    std::thread::sleep(Duration::from_millis(u64::from(hint) + 150));
    write_frame(&mut stream, &frames[1]).unwrap();
    assert_eq!(read_ack(&mut stream), b'+');
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    assert_eq!(read_ack(&mut stream), b'+');
    drop(stream);

    let (summary, count) = server.join().unwrap();
    assert_eq!(summary.rate_sheds, 1);
    assert_eq!(summary.completed, 1);
    assert_eq!(count, 120, "the shed frame landed exactly once");
}

#[test]
fn an_oversized_length_header_is_refused_before_allocation() {
    let _guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = ServeOptions {
        connections: 1,
        max_frame_bytes: 64,
        ..ServeOptions::default()
    };
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let summary = serve(&listener, session.as_mut(), &no_snapshots(), &options).unwrap();
        (summary, session.count())
    });

    // Only the 4-byte header goes out: the reject must not depend on the
    // payload ever existing, because the server must not buffer for it.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&1_000_000u32.to_be_bytes()).unwrap();
    assert_eq!(read_ack(&mut stream), b'-', "oversized header gets -");
    let mut sink = [0u8; 1];
    assert_eq!(stream.read(&mut sink).unwrap(), 0, "and the session ends");
    drop(stream);

    let (summary, count) = server.join().unwrap();
    assert_eq!(summary.oversized_frames, 1);
    assert_eq!(summary.failed, 1);
    assert_eq!(count, 0);
}

/// The tentpole drill: a sequenced fleet at 2x the admission limit and
/// well past the per-connection rate cap, with faults injected at the
/// shed and evict seams, under a byte budget two frames deep. The window
/// must finalize bit-identical to a fault-free serial ingest, with zero
/// duplicate absorbs and the measured peak charge inside the budget.
#[test]
fn an_overloaded_faulted_fleet_is_bit_identical_and_stays_inside_its_budget() {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let spec = "sw-ems:eps=1,d=32";
    let plan = Plan {
        spec: spec.into(),
        connections: 8,
        frames_per_connection: 6,
        reports_per_frame: 40,
        seed: 9,
        session: Some("surge".into()),
        retry_budget: Duration::from_secs(60),
        ..Plan::default()
    };
    let frames = generate_frames(&plan).unwrap();
    let (expected, expected_count) = reference_finalize(spec, &frames);
    // Two of the largest sequenced frames (payload + `seq N\n` prefix).
    let budget = 2 * (frames.iter().flatten().map(|f| f.len()).max().unwrap() + 16);

    // `admission=err` sheds one admittable connection at accept;
    // `ack-evict=err` turns one successful ack write into an eviction.
    faults::install("admission=err@5,ack-evict=err@9").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions {
        max_connections: 4,
        max_rps_per_conn: 100.0,
        memory_budget_bytes: budget,
        busy_retry: Duration::from_millis(50),
        ..ServeOptions::default() // connections: 0 — until shutdown
    };
    let shutdown = Arc::clone(&options.shutdown);
    let server = std::thread::spawn({
        let spec = spec.to_string();
        move || {
            let mut session = build_session(&spec).unwrap();
            let summary = serve(&listener, session.as_mut(), &no_snapshots(), &options).unwrap();
            (summary, session.finalize_text().unwrap(), session.count())
        }
    });

    let report = run(&addr, &plan).unwrap();
    shutdown.store(true, Ordering::SeqCst);
    let (summary, finalized, count) = server.join().unwrap();
    faults::clear();
    drop(guard);

    assert_eq!(report.reports, plan.total_reports());
    assert_eq!(summary.faults_injected, 2, "both seam faults fired");
    assert!(report.sheds > 0, "clients should have seen !busy");
    assert!(summary.admission_sheds >= 1, "at least the injected shed");
    assert!(
        summary.rate_sheds > 0,
        "240 reports/conn against a 100-token bucket must shed"
    );
    assert_eq!(summary.evictions, 1, "exactly the injected eviction");
    assert!(summary.peak_queue_bytes > 0);
    assert!(
        summary.peak_queue_bytes <= budget as u64,
        "peak pipeline charge {} exceeded the {budget}-byte budget",
        summary.peak_queue_bytes
    );
    assert_eq!(count, expected_count, "lost or doubled reports");
    assert_eq!(
        finalized, expected,
        "the overloaded run must be bit-identical to the fault-free reference"
    );
}

/// Acceptance drill: a deliberately panicked absorber is contained by
/// the supervisor — serve exits with a clear error *and* a durable final
/// snapshot covering every acked frame, proven by restarting on the same
/// listener and resuming the same fleet to a bit-identical window.
#[test]
fn a_panicked_absorber_is_contained_and_the_window_resumes_from_its_snapshot() {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("absorber-panic");
    let snap = dir.join("window.snap");
    let spec = "grr:eps=1,d=16";
    let plan = Plan {
        spec: spec.into(),
        connections: 3,
        frames_per_connection: 4,
        reports_per_frame: 25,
        seed: 17,
        session: Some("contain".into()),
        retry_budget: Duration::from_secs(30),
        ..Plan::default()
    };
    let frames = generate_frames(&plan).unwrap();
    let (expected, expected_count) = reference_finalize(spec, &frames);

    // The 12th batch commit — the last frame of the fleet — panics in
    // the absorber before it can be absorbed or acked.
    faults::install("absorb=panic@12").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let options = ServeOptions::default();
    let policy = SnapshotPolicy {
        path: Some(snap.clone()),
        every: 0,
        keep: 0,
    };
    let server1 = std::thread::spawn({
        let spec = spec.to_string();
        move || {
            let mut session = build_session(&spec).unwrap();
            let err = serve(&listener, session.as_mut(), &policy, &options).unwrap_err();
            (listener, err, session.count())
        }
    });
    // The fleet keeps retrying right through the contained crash.
    let client = std::thread::spawn({
        let plan = plan.clone();
        move || run(&addr, &plan).unwrap()
    });

    let (listener, err, count_at_panic) = server1.join().unwrap();
    faults::clear();
    assert!(
        matches!(err, CollectorError::Panicked(_)),
        "expected a contained panic, got: {err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("absorber"), "names the stage: {msg}");
    assert!(msg.contains("injected panic"), "carries the cause: {msg}");
    assert!(
        count_at_panic < expected_count,
        "the panicked batch must not have been absorbed"
    );

    // The final snapshot written on the way down covers every acked
    // frame: a fresh session restores to exactly the crash-time count.
    let mut resumed = build_session(spec).unwrap();
    resumed
        .restore(&std::fs::read_to_string(&snap).unwrap())
        .unwrap();
    assert_eq!(resumed.count(), count_at_panic, "acked frames are durable");

    // Restart on the same listener; the fleet finishes the window.
    let options2 = ServeOptions::default();
    let shutdown2 = Arc::clone(&options2.shutdown);
    let policy2 = SnapshotPolicy {
        path: Some(snap.clone()),
        every: 0,
        keep: 0,
    };
    let server2 = std::thread::spawn(move || {
        let summary = serve(&listener, resumed.as_mut(), &policy2, &options2).unwrap();
        (summary, resumed.finalize_text().unwrap(), resumed.count())
    });
    let report = client.join().unwrap();
    shutdown2.store(true, Ordering::SeqCst);
    let (summary2, finalized, count) = server2.join().unwrap();
    drop(guard);

    assert_eq!(report.reports, plan.total_reports());
    assert!(summary2.sessions_resumed >= 1, "cursors crossed the crash");
    assert_eq!(count, expected_count, "lost or doubled reports");
    assert_eq!(
        finalized, expected,
        "resume after a contained panic must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panicked_snapshot_writer_is_restarted_on_the_same_generation() {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("writer-restart");
    let snap = dir.join("window.snap");

    // The second cadence write panics mid-persist; the supervisor must
    // retry the *same* generation so no durability waiter ever hangs.
    faults::install("snap-write=panic@2").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = ServeOptions {
        connections: 1,
        ..ServeOptions::default()
    };
    let policy = SnapshotPolicy {
        path: Some(snap.clone()),
        every: 100,
        keep: 0,
    };
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let summary = serve(&listener, session.as_mut(), &policy, &options).unwrap();
        (summary, session.count())
    });

    let generator = build_session("grr:eps=1,d=8").unwrap();
    let log = generator.gen_reports(400, 23).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    for frame in frames_of(&log, 100) {
        write_frame(&mut stream, &frame).unwrap();
        assert_eq!(read_ack(&mut stream), b'+');
        // Let the writer drain each cadence publish before the next, so
        // the panic deterministically lands on a writer-thread persist.
        std::thread::sleep(Duration::from_millis(60));
    }
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    assert_eq!(read_ack(&mut stream), b'+');
    drop(stream);

    let (summary, count) = server.join().unwrap();
    faults::clear();
    drop(guard);
    assert_eq!(summary.supervisor_restarts, 1, "one contained restart");
    assert_eq!(count, 400);
    // The retried generation (and the final snapshot) landed intact.
    let mut recovered = build_session("grr:eps=1,d=8").unwrap();
    recovered
        .restore(&std::fs::read_to_string(&snap).unwrap())
        .unwrap();
    assert_eq!(recovered.count(), 400);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_writer_past_its_restart_budget_fails_loudly_with_a_final_snapshot() {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("writer-give-up");
    let snap = dir.join("window.snap");

    // Three consecutive panics on the same generation exhaust the
    // restart budget: the spool is poisoned, shutdown is raised, and
    // serve returns a loud error — never a silent wedge.
    faults::install("snap-write=panic@1,snap-write=panic@2,snap-write=panic@3").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let options = ServeOptions::default();
    let policy = SnapshotPolicy {
        path: Some(snap.clone()),
        every: 100,
        keep: 0,
    };
    let server = std::thread::spawn(move || {
        let mut session = build_session("grr:eps=1,d=8").unwrap();
        let err = serve(&listener, session.as_mut(), &policy, &options).unwrap_err();
        (err, session.count())
    });

    // A client that tolerates the abrupt end the give-up forces.
    let generator = build_session("grr:eps=1,d=8").unwrap();
    let log = generator.gen_reports(400, 27).unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut acked = 0u64;
    for frame in frames_of(&log, 100) {
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
        let mut ack = [0u8; 1];
        match stream.read_exact(&mut ack) {
            Ok(()) if ack[0] == b'+' => acked += 100,
            _ => break,
        }
        std::thread::sleep(Duration::from_millis(60));
    }
    drop(stream);

    let (err, count) = server.join().unwrap();
    faults::clear();
    drop(guard);
    let msg = err.to_string();
    assert!(
        msg.contains("snapshot writer panicked"),
        "the error names the stage and the budget: {msg}"
    );
    assert!(acked >= 100, "the first cadence frame was acked");
    // Even on the give-up path, the final snapshot covers every acked
    // frame — written by the serve thread, not the dead writer.
    let mut recovered = build_session("grr:eps=1,d=8").unwrap();
    recovered
        .restore(&std::fs::read_to_string(&snap).unwrap())
        .unwrap();
    assert_eq!(recovered.count(), count);
    assert!(
        recovered.count() >= acked,
        "acked frames are in the snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
