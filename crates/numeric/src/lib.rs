//! Numerical substrate for the `sw-ldp` workspace.
//!
//! The reference implementation of the paper leaned on NumPy; this crate
//! provides the pieces of that toolkit the rest of the workspace needs,
//! implemented from scratch on top of `rand`:
//!
//! - [`rng`]: a deterministic, splittable [`rng::SplitMix64`] generator so
//!   every experiment trial is reproducible from a seed.
//! - [`dist`]: samplers for the statistical distributions used by the
//!   evaluation datasets (normal, gamma, beta, lognormal, exponential,
//!   mixtures).
//! - [`matrix`]: a dense row-major [`matrix::Matrix`] with the handful of
//!   BLAS-1/2 kernels the EM/EMS and ADMM solvers need.
//! - [`operator`]: the [`operator::LinearOperator`] abstraction the solvers
//!   apply matrices through, so structured (banded) transition operators
//!   can replace the dense matvec.
//! - [`histogram`]: [`histogram::Histogram`], the common currency of the
//!   workspace — a normalized distribution over `d` equal-width buckets of
//!   `[0, 1]` with CDF, moment, quantile and range-mass queries.
//! - [`quad`]: exact integration of the piecewise-linear/quadratic overlap
//!   functions that arise when building Square Wave transition matrices.
//! - [`stats`]: streaming and batch summary statistics.
//! - [`exact`]: [`exact::ExactSum`], exact order-independent float
//!   accumulation so sharded aggregation merges bit-identically.
//! - [`kernels`]: runtime-dispatched SIMD/unrolled absorb kernels
//!   (bit-identical to their scalar references; `LDP_NO_SIMD=1` forces
//!   the scalar path).

// The only unsafe code in this crate is the runtime-dispatched AVX2
// intrinsic routines in `kernels`, which carries its own module-level
// allowance; everything else stays denied.
#![deny(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod exact;
pub mod histogram;
pub mod kernels;
pub mod matrix;
pub mod operator;
pub mod quad;
pub mod rng;
pub mod stats;

pub use error::NumericError;
pub use exact::ExactSum;
pub use histogram::Histogram;
pub use matrix::Matrix;
pub use operator::LinearOperator;
pub use rng::SplitMix64;
