//! The [`Mechanism`] trait and the [`Client`]/[`Aggregator`] deployment
//! split.
//!
//! A mechanism is the full description of one ε-LDP protocol: how a client
//! perturbs a private input into a wire [`Mechanism::Report`], and how an
//! untrusted server folds reports into a bounded-size streaming
//! [`Mechanism::State`] and finalizes an estimate. The state is the only
//! server-side memory — O(d̃) for every protocol in this workspace — so a
//! collector never holds the report stream, and shards collected on
//! different workers or machines combine with [`Mechanism::merge_state`].

use crate::error::CoreError;
use crate::params::Epsilon;
use rand::Rng;

/// One ε-LDP protocol: client-side randomization plus server-side
/// streaming aggregation.
///
/// The contract (enforced by the workspace conformance suite):
///
/// - estimates obtained by absorbing reports one at a time equal the
///   one-shot [`Mechanism::aggregate`] bit for bit;
/// - merging shard states equals absorbing the concatenated stream;
/// - randomization is deterministic given the RNG stream.
pub trait Mechanism {
    /// The client's private input (e.g. `f64` in `[0, 1]`, a bucket index).
    type Input: ?Sized;
    /// What one user sends to the aggregator (the wire format).
    type Report;
    /// The server-side streaming accumulator state.
    type State: Clone;
    /// The final server-side estimate.
    type Output;

    /// The privacy budget the randomizer satisfies.
    fn epsilon(&self) -> Epsilon;

    /// A stable fingerprint of the mechanism configuration; two aggregator
    /// shards merge only if their fingerprints agree. Build it with
    /// [`crate::params::fingerprint_fields`].
    fn fingerprint(&self) -> u64;

    /// Client side: perturbs one private input into a wire report.
    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &Self::Input,
        rng: &mut R,
    ) -> Result<Self::Report, CoreError>;

    /// A fresh, empty accumulator state for this configuration.
    fn empty_state(&self) -> Self::State;

    /// Absorbs one report into the state. Malformed reports — ones this
    /// mechanism could not have produced — are rejected so a faulty client
    /// cannot silently skew the estimate.
    fn absorb(&self, state: &mut Self::State, report: &Self::Report) -> Result<(), CoreError>;

    /// Bulk ingestion; mechanisms may override with a vectorized path.
    /// On error the state may have absorbed a prefix of the slice; callers
    /// that need all-or-nothing semantics should validate first or discard
    /// the state on failure (which is what [`Aggregator::push_slice`] does).
    fn absorb_slice(
        &self,
        state: &mut Self::State,
        reports: &[Self::Report],
    ) -> Result<(), CoreError> {
        for report in reports {
            self.absorb(state, report)?;
        }
        Ok(())
    }

    /// Folds another shard's state into `state`. Implementations must
    /// reject dimension mismatches.
    fn merge_state(&self, state: &mut Self::State, other: &Self::State) -> Result<(), CoreError>;

    /// Turns the accumulated state into the final estimate.
    fn finalize(&self, state: &Self::State) -> Result<Self::Output, CoreError>;

    /// One-shot server side: absorbs every report into a fresh state and
    /// finalizes. By construction this is the same code path as streaming
    /// ingestion, which is what makes the streaming-equals-one-shot
    /// guarantee structural rather than incidental.
    fn aggregate(&self, reports: &[Self::Report]) -> Result<Self::Output, CoreError>
    where
        Self: Sized,
    {
        let mut state = self.empty_state();
        self.absorb_slice(&mut state, reports)?;
        self.finalize(&state)
    }
}

/// Forwarding impl so borrowed mechanisms plug into [`Client`] and
/// [`Aggregator`] without cloning.
impl<M: Mechanism + ?Sized> Mechanism for &M {
    type Input = M::Input;
    type Report = M::Report;
    type State = M::State;
    type Output = M::Output;

    fn epsilon(&self) -> Epsilon {
        (**self).epsilon()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }

    fn randomize<R: Rng + ?Sized>(
        &self,
        input: &Self::Input,
        rng: &mut R,
    ) -> Result<Self::Report, CoreError> {
        (**self).randomize(input, rng)
    }

    fn empty_state(&self) -> Self::State {
        (**self).empty_state()
    }

    fn absorb(&self, state: &mut Self::State, report: &Self::Report) -> Result<(), CoreError> {
        (**self).absorb(state, report)
    }

    fn absorb_slice(
        &self,
        state: &mut Self::State,
        reports: &[Self::Report],
    ) -> Result<(), CoreError> {
        (**self).absorb_slice(state, reports)
    }

    fn merge_state(&self, state: &mut Self::State, other: &Self::State) -> Result<(), CoreError> {
        (**self).merge_state(state, other)
    }

    fn finalize(&self, state: &Self::State) -> Result<Self::Output, CoreError> {
        (**self).finalize(state)
    }
}

/// The client side of a deployment: borrows a mechanism configuration and
/// perturbs private inputs on the user's device. Only the reports it
/// returns ever leave the device.
///
/// # Examples
///
/// ```
/// # use ldp_core::{Client, CoreError, Epsilon, Mechanism};
/// # use ldp_numeric::SplitMix64;
/// # #[derive(Clone)]
/// # struct Coin;
/// # impl Mechanism for Coin {
/// #     type Input = bool;
/// #     type Report = bool;
/// #     type State = [u64; 2];
/// #     type Output = f64;
/// #     fn epsilon(&self) -> Epsilon { Epsilon::new(1.0).unwrap() }
/// #     fn fingerprint(&self) -> u64 { 0xC0 }
/// #     fn randomize<R: rand::Rng + ?Sized>(&self, b: &bool, rng: &mut R)
/// #         -> Result<bool, CoreError> {
/// #         Ok(if rng.gen::<bool>() { *b } else { rng.gen() })
/// #     }
/// #     fn empty_state(&self) -> [u64; 2] { [0, 0] }
/// #     fn absorb(&self, s: &mut [u64; 2], r: &bool) -> Result<(), CoreError> {
/// #         s[usize::from(*r)] += 1;
/// #         Ok(())
/// #     }
/// #     fn merge_state(&self, s: &mut [u64; 2], o: &[u64; 2]) -> Result<(), CoreError> {
/// #         s[0] += o[0]; s[1] += o[1];
/// #         Ok(())
/// #     }
/// #     fn finalize(&self, s: &[u64; 2]) -> Result<f64, CoreError> {
/// #         Ok(s[1] as f64 / (s[0] + s[1]).max(1) as f64)
/// #     }
/// # }
/// let mechanism = Coin; // any Mechanism impl
/// let client = Client::new(&mechanism);
/// let mut rng = SplitMix64::new(7);
///
/// // One value in, one wire report out — deterministic given the RNG
/// // stream, and the only thing that ever leaves the device.
/// let report = client.randomize(&true, &mut rng).unwrap();
/// let batch = client.randomize_batch(&[true, false, true], &mut rng).unwrap();
/// assert_eq!(batch.len(), 3);
/// # let _ = report;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Client<'a, M: Mechanism> {
    mechanism: &'a M,
}

impl<'a, M: Mechanism> Client<'a, M> {
    /// A client for `mechanism`.
    #[must_use]
    pub fn new(mechanism: &'a M) -> Self {
        Client { mechanism }
    }

    /// The mechanism configuration in use.
    #[must_use]
    pub fn mechanism(&self) -> &'a M {
        self.mechanism
    }

    /// Perturbs one private input.
    pub fn randomize<R: Rng + ?Sized>(
        &self,
        input: &M::Input,
        rng: &mut R,
    ) -> Result<M::Report, CoreError> {
        self.mechanism.randomize(input, rng)
    }

    /// Perturbs a batch of inputs with one sequential RNG stream.
    pub fn randomize_batch<R: Rng + ?Sized>(
        &self,
        inputs: &[M::Input],
        rng: &mut R,
    ) -> Result<Vec<M::Report>, CoreError>
    where
        M::Input: Sized,
    {
        let mut reports = Vec::with_capacity(inputs.len());
        for input in inputs {
            reports.push(self.mechanism.randomize(input, rng)?);
        }
        Ok(reports)
    }
}

/// The server side of a deployment: a streaming accumulator over one
/// mechanism configuration.
///
/// Memory is O(state), never O(reports): collectors [`Aggregator::push`]
/// reports as they arrive, periodically [`Aggregator::merge`] shard
/// aggregators (e.g. one per `ldp-pool` worker), and
/// [`Aggregator::finalize`] once at the end of the collection window.
///
/// # Examples
///
/// Streaming ingestion on two shards, merged, equals one pass:
///
/// ```
/// # use ldp_core::{Aggregator, Client, CoreError, Epsilon, Mechanism};
/// # use ldp_numeric::SplitMix64;
/// # #[derive(Clone)]
/// # struct Coin;
/// # impl Mechanism for Coin {
/// #     type Input = bool;
/// #     type Report = bool;
/// #     type State = [u64; 2];
/// #     type Output = f64;
/// #     fn epsilon(&self) -> Epsilon { Epsilon::new(1.0).unwrap() }
/// #     fn fingerprint(&self) -> u64 { 0xC0 }
/// #     fn randomize<R: rand::Rng + ?Sized>(&self, b: &bool, rng: &mut R)
/// #         -> Result<bool, CoreError> {
/// #         Ok(if rng.gen::<bool>() { *b } else { rng.gen() })
/// #     }
/// #     fn empty_state(&self) -> [u64; 2] { [0, 0] }
/// #     fn absorb(&self, s: &mut [u64; 2], r: &bool) -> Result<(), CoreError> {
/// #         s[usize::from(*r)] += 1;
/// #         Ok(())
/// #     }
/// #     fn merge_state(&self, s: &mut [u64; 2], o: &[u64; 2]) -> Result<(), CoreError> {
/// #         s[0] += o[0]; s[1] += o[1];
/// #         Ok(())
/// #     }
/// #     fn finalize(&self, s: &[u64; 2]) -> Result<f64, CoreError> {
/// #         Ok(s[1] as f64 / (s[0] + s[1]).max(1) as f64)
/// #     }
/// # }
/// let mechanism = Coin; // any Mechanism impl
/// let client = Client::new(&mechanism);
/// let mut rng = SplitMix64::new(7);
/// let reports = client
///     .randomize_batch(&[true, false, true, true], &mut rng)
///     .unwrap();
///
/// // Two collectors each hold O(state), not O(reports)…
/// let mut shard_a = Aggregator::new(&mechanism);
/// let mut shard_b = Aggregator::new(&mechanism);
/// shard_a.push_slice(&reports[..2]).unwrap();
/// shard_b.push_slice(&reports[2..]).unwrap();
///
/// // …and merge exactly: same estimate as one aggregator over all four.
/// shard_a.merge(&shard_b).unwrap();
/// assert_eq!(shard_a.count(), 4);
/// let mut single = Aggregator::new(&mechanism);
/// single.push_slice(&reports).unwrap();
/// assert_eq!(
///     shard_a.finalize().unwrap().to_bits(),
///     single.finalize().unwrap().to_bits(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Aggregator<M: Mechanism> {
    mechanism: M,
    state: M::State,
    count: u64,
}

impl<M: Mechanism> Aggregator<M> {
    /// An empty aggregator for `mechanism`.
    #[must_use]
    pub fn new(mechanism: M) -> Self {
        let state = mechanism.empty_state();
        Aggregator {
            mechanism,
            state,
            count: 0,
        }
    }

    /// Reassembles an aggregator from a previously exported state (e.g. a
    /// shard produced by a batched collection path); `count` is the number
    /// of reports the state has absorbed.
    #[must_use]
    pub fn from_parts(mechanism: M, state: M::State, count: u64) -> Self {
        Aggregator {
            mechanism,
            state,
            count,
        }
    }

    /// The mechanism configuration in use.
    #[must_use]
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// The raw accumulator state (for persistence or transport).
    #[must_use]
    pub fn state(&self) -> &M::State {
        &self.state
    }

    /// Number of reports absorbed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any report has been absorbed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Absorbs one wire report.
    pub fn push(&mut self, report: &M::Report) -> Result<(), CoreError> {
        self.mechanism.absorb(&mut self.state, report)?;
        self.count += 1;
        Ok(())
    }

    /// Bulk ingestion: absorbs every report in `reports`, or absorbs
    /// nothing if any report is malformed (the state is restored on error).
    pub fn push_slice(&mut self, reports: &[M::Report]) -> Result<(), CoreError> {
        let checkpoint = self.state.clone();
        match self.mechanism.absorb_slice(&mut self.state, reports) {
            Ok(()) => {
                self.count += reports.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.state = checkpoint;
                Err(e)
            }
        }
    }

    /// Pool-sharded bulk ingestion: splits `reports` into `shards`
    /// contiguous chunks in index order, absorbs each chunk into a private
    /// state on the shared worker pool ([`ldp_pool::global`]), then folds
    /// the shard states back in ascending index order through the same
    /// fingerprint-checked [`Aggregator::merge`] machinery the collector
    /// uses. Because every family's `merge_state` is exact (integer counts
    /// or [`ldp_numeric::ExactSum`] expansions), the result is
    /// **bit-identical** to [`Aggregator::push_slice`] for any shard count
    /// and any pool size — the workspace `pool_determinism` suite pins
    /// this for every mechanism family. Like `push_slice`, absorbs
    /// nothing if any report is malformed.
    ///
    /// # Errors
    /// Any shard's absorb error (the first in index order) is returned,
    /// as is a worker-pool failure; `self` is unchanged on error.
    pub fn push_slice_sharded(
        &mut self,
        reports: &[M::Report],
        shards: usize,
    ) -> Result<(), CoreError>
    where
        M: Sync,
        M::Report: Sync,
        M::State: Send,
    {
        if reports.is_empty() {
            return Ok(());
        }
        if shards == 0 {
            return Err(CoreError::Aggregation(
                "pooled absorb requires at least one shard".into(),
            ));
        }
        let chunk = reports.len().div_ceil(shards).max(1);
        let chunks: Vec<&[M::Report]> = reports.chunks(chunk).collect();
        let mechanism = &self.mechanism;
        let results = ldp_pool::global()
            .run(chunks.len(), |i| {
                let mut state = mechanism.empty_state();
                mechanism
                    .absorb_slice(&mut state, chunks[i])
                    .map(|()| state)
            })
            .map_err(|e| CoreError::Aggregation(format!("worker pool failure: {e}")))?;
        // Surface the first absorb error in index order, all-or-nothing.
        let mut states = Vec::with_capacity(results.len());
        for result in results {
            states.push(result?);
        }
        let mut shard_aggs = chunks
            .iter()
            .zip(states)
            .map(|(c, state)| Aggregator::from_parts(mechanism, state, c.len() as u64));
        let mut merged = shard_aggs.next().expect("at least one shard");
        for shard in shard_aggs {
            merged.merge(&shard)?;
        }
        let checkpoint = self.state.clone();
        match mechanism.merge_state(&mut self.state, merged.state()) {
            Ok(()) => {
                self.count += merged.count();
                Ok(())
            }
            Err(e) => {
                self.state = checkpoint;
                Err(e)
            }
        }
    }

    /// [`Aggregator::push_slice_sharded`] with one shard per configured
    /// worker ([`ldp_pool::configured_threads`]) — the drop-in pooled
    /// variant of [`Aggregator::push_slice`].
    pub fn push_slice_pooled(&mut self, reports: &[M::Report]) -> Result<(), CoreError>
    where
        M: Sync,
        M::Report: Sync,
        M::State: Send,
    {
        self.push_slice_sharded(reports, ldp_pool::configured_threads().max(1))
    }

    /// Merges another shard collected for the same configuration.
    pub fn merge(&mut self, other: &Aggregator<M>) -> Result<(), CoreError> {
        if self.mechanism.fingerprint() != other.mechanism.fingerprint() {
            return Err(CoreError::ShardMismatch(
                "aggregators were built for different mechanism configurations".into(),
            ));
        }
        self.mechanism.merge_state(&mut self.state, &other.state)?;
        self.count += other.count;
        Ok(())
    }

    /// The final estimate over everything absorbed so far. Does not consume
    /// the aggregator: collection windows can snapshot an estimate and keep
    /// streaming.
    pub fn finalize(&self) -> Result<M::Output, CoreError> {
        self.mechanism.finalize(&self.state)
    }

    /// Decomposes into the mechanism, state, and report count.
    #[must_use]
    pub fn into_parts(self) -> (M, M::State, u64) {
        (self.mechanism, self.state, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::fingerprint_fields;
    use ldp_numeric::SplitMix64;

    /// A deliberately stateful test mechanism: counts reports per bucket.
    #[derive(Debug, Clone)]
    struct Toy {
        buckets: usize,
    }

    impl Mechanism for Toy {
        type Input = usize;
        type Report = usize;
        type State = Vec<u64>;
        type Output = Vec<f64>;

        fn epsilon(&self) -> Epsilon {
            Epsilon::new(1.0).unwrap()
        }

        fn fingerprint(&self) -> u64 {
            fingerprint_fields(0x70, &[self.buckets as u64])
        }

        fn randomize<R: Rng + ?Sized>(
            &self,
            input: &usize,
            rng: &mut R,
        ) -> Result<usize, CoreError> {
            if *input >= self.buckets {
                return Err(CoreError::InvalidInput(format!("{input}")));
            }
            // Flip to a uniform bucket half the time.
            Ok(if rng.gen::<bool>() {
                *input
            } else {
                rng.gen_range(0..self.buckets)
            })
        }

        fn empty_state(&self) -> Vec<u64> {
            vec![0; self.buckets]
        }

        fn absorb(&self, state: &mut Vec<u64>, report: &usize) -> Result<(), CoreError> {
            if *report >= self.buckets {
                return Err(CoreError::InvalidReport(format!("{report}")));
            }
            state[*report] += 1;
            Ok(())
        }

        fn merge_state(&self, state: &mut Vec<u64>, other: &Vec<u64>) -> Result<(), CoreError> {
            if state.len() != other.len() {
                return Err(CoreError::ShardMismatch("bucket counts differ".into()));
            }
            for (a, b) in state.iter_mut().zip(other) {
                *a += b;
            }
            Ok(())
        }

        fn finalize(&self, state: &Vec<u64>) -> Result<Vec<f64>, CoreError> {
            let n = state.iter().sum::<u64>().max(1) as f64;
            Ok(state.iter().map(|&c| c as f64 / n).collect())
        }
    }

    fn reports(n: usize, seed: u64) -> (Toy, Vec<usize>) {
        let mech = Toy { buckets: 4 };
        let client = Client::new(&mech);
        let mut rng = SplitMix64::new(seed);
        let inputs: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let reports = client.randomize_batch(&inputs, &mut rng).unwrap();
        (mech, reports)
    }

    #[test]
    fn streaming_equals_one_shot() {
        let (mech, reports) = reports(500, 1);
        let one_shot = mech.aggregate(&reports).unwrap();
        let mut agg = Aggregator::new(mech);
        for r in &reports {
            agg.push(r).unwrap();
        }
        assert_eq!(agg.count(), 500);
        assert_eq!(agg.finalize().unwrap(), one_shot);
    }

    #[test]
    fn merged_shards_equal_concatenation() {
        let (mech, reports) = reports(401, 2);
        let one_shot = mech.aggregate(&reports).unwrap();
        for split in [0, 1, 200, 400, 401] {
            let mut a = Aggregator::new(mech.clone());
            a.push_slice(&reports[..split]).unwrap();
            let mut b = Aggregator::new(mech.clone());
            b.push_slice(&reports[split..]).unwrap();
            a.merge(&b).unwrap();
            assert_eq!(a.count(), 401);
            assert_eq!(a.finalize().unwrap(), one_shot, "split at {split}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_configurations() {
        let a = Aggregator::new(Toy { buckets: 4 });
        let mut b = Aggregator::new(Toy { buckets: 8 });
        assert!(matches!(b.merge(&a), Err(CoreError::ShardMismatch(_))));
    }

    #[test]
    fn push_slice_is_all_or_nothing() {
        let mech = Toy { buckets: 4 };
        let mut agg = Aggregator::new(mech);
        let err = agg.push_slice(&[0, 1, 9, 2]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidReport(_)));
        assert_eq!(agg.count(), 0);
        assert!(agg.is_empty());
        assert_eq!(
            agg.state(),
            &vec![0; 4],
            "failed bulk ingest must not mutate"
        );
    }

    #[test]
    fn from_parts_round_trips() {
        let (mech, reports) = reports(64, 3);
        let mut agg = Aggregator::new(mech);
        agg.push_slice(&reports).unwrap();
        let expected = agg.finalize().unwrap();
        let (mech, state, count) = agg.into_parts();
        let rebuilt = Aggregator::from_parts(mech, state, count);
        assert_eq!(rebuilt.count(), 64);
        assert_eq!(rebuilt.finalize().unwrap(), expected);
    }

    #[test]
    fn borrowed_mechanism_works_through_forwarding_impl() {
        let mech = Toy { buckets: 4 };
        let mut agg = Aggregator::new(&mech);
        let client = Client::new(&mech);
        let mut rng = SplitMix64::new(5);
        let r = client.randomize(&2, &mut rng).unwrap();
        agg.push(&r).unwrap();
        assert_eq!(agg.count(), 1);
        assert_eq!(agg.mechanism().fingerprint(), mech.fingerprint());
    }

    #[test]
    fn client_rejects_out_of_domain_input() {
        let mech = Toy { buckets: 4 };
        let client = Client::new(&mech);
        let mut rng = SplitMix64::new(6);
        assert!(client.randomize(&4, &mut rng).is_err());
    }
}
