//! A bounded multi-producer, single-consumer channel with **blocking
//! backpressure**.
//!
//! The collector's concurrent serve path needs exactly one queue shape:
//! many connection threads producing decoded batches, one absorber thread
//! consuming them, with a hard bound on in-flight work so a fast fleet of
//! forwarders cannot balloon the collector's memory. [`Sender::push`]
//! therefore **blocks** when the channel is full — backpressure propagates
//! to the TCP connection (the forwarder's next frame simply isn't acked
//! yet) instead of dropping or buffering unboundedly. Nothing is ever
//! silently discarded: every pushed value is either delivered to the
//! receiver or handed back in a [`SendError`] when the receiver is gone.
//!
//! Disconnection is symmetric and explicit:
//!
//! - when every [`Sender`] has been dropped, [`Receiver::pop`] drains the
//!   remaining values and then returns `None`;
//! - when the [`Receiver`] is dropped, every blocked and future
//!   [`Sender::push`] returns [`SendError`] carrying the rejected value.
//!
//! # Byte-weighted bounds
//!
//! A count bound alone cannot cap memory: 32 queued frames may be 32 KiB
//! or 2 GiB. A channel from [`bounded_weighted`] adds a **byte budget**
//! shared by queued values *and* outstanding [`Sender::reserve`]
//! reservations, so a producer can charge a payload's bytes against the
//! budget **before allocating its buffer** — the budget then covers
//! in-flight decode buffers, not just what sits in the queue. One
//! oversized value is still admitted whenever no bytes are outstanding
//! (backpressure **blocks, never drops**, even when a single item exceeds
//! the whole budget), and [`Receiver::peak_bytes`] records the high-water
//! mark for capacity verification.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// The channel's shared core.
struct Chan<T> {
    state: Mutex<State<T>>,
    /// Producers park here while the buffer is full or the byte budget is
    /// exhausted.
    not_full: Condvar,
    /// The consumer parks here while the buffer is empty.
    not_empty: Condvar,
}

struct State<T> {
    /// Each buffered value carries the byte weight it was charged.
    buf: VecDeque<(T, usize)>,
    capacity: usize,
    /// Byte budget shared by queued weights and outstanding reservations
    /// (`usize::MAX` = unweighted channel).
    byte_budget: usize,
    /// Bytes currently charged: queued weights + reservations not yet
    /// pushed or released.
    used_bytes: usize,
    /// High-water mark of `used_bytes` over the channel's lifetime.
    peak_bytes: usize,
    senders: usize,
    receiver_alive: bool,
}

impl<T> State<T> {
    /// Whether `bytes` more can be charged right now. An oversized charge
    /// is admitted whenever nothing else is outstanding, so progress never
    /// deadlocks on a budget smaller than one item.
    fn admits_bytes(&self, bytes: usize) -> bool {
        self.used_bytes == 0 || self.used_bytes.saturating_add(bytes) <= self.byte_budget
    }

    fn charge(&mut self, bytes: usize) {
        self.used_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
    }
}

/// The value a [`Sender::push`] could not deliver because the receiver was
/// dropped. The payload is returned so the producer can retry elsewhere,
/// log it, or surface it — a bounded channel must never eat data silently.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the channel's receiver was dropped")
    }
}

/// Creates a bounded MPSC channel holding at most `capacity` values
/// (clamped to ≥ 1). Producers clone the [`Sender`]; the single
/// [`Receiver`] is the consumer end.
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    bounded_weighted(capacity, 0)
}

/// Creates a bounded MPSC channel with **two** bounds: at most `capacity`
/// values and at most `byte_budget` charged bytes (queued weights plus
/// outstanding [`Sender::reserve`] reservations). `byte_budget = 0` means
/// unweighted — byte charges are tracked but never block.
#[must_use]
pub fn bounded_weighted<T>(capacity: usize, byte_budget: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            byte_budget: if byte_budget == 0 {
                usize::MAX
            } else {
                byte_budget
            },
            used_bytes: 0,
            peak_bytes: 0,
            senders: 1,
            receiver_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// The producing end of a [`bounded`] channel. Cloneable; dropping the
/// last clone disconnects the channel (the receiver drains, then sees
/// `None`).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Delivers `value`, **blocking while the channel is full** — this is
    /// the backpressure edge. Returns `Err` with the value if the receiver
    /// has been dropped (nothing is ever silently discarded).
    pub fn push(&self, value: T) -> Result<(), SendError<T>> {
        self.push_weighted(value, 0)
    }

    /// Delivers `value` charged at `bytes`, blocking while the channel is
    /// full **or** the byte budget is exhausted. The charge is released
    /// when the receiver pops the value. A value heavier than the whole
    /// budget is admitted once nothing else is charged — blocks, never
    /// drops.
    pub fn push_weighted(&self, value: T, bytes: usize) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock();
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.buf.len() < state.capacity && state.admits_bytes(bytes) {
                state.charge(bytes);
                state.buf.push_back((value, bytes));
                drop(state);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            self.chan.not_full.wait(&mut state);
        }
    }

    /// Charges `bytes` against the byte budget **without queueing
    /// anything yet**, blocking while the budget is exhausted. Call this
    /// *before* allocating a payload buffer so the budget covers in-flight
    /// decode memory; follow up with [`Sender::push_reserved`] to hand the
    /// decoded value over (the charge transfers to the queued value) or
    /// [`Sender::unreserve`] to release the charge on an error path.
    ///
    /// Returns `Err` when the receiver is gone (nothing was charged).
    pub fn reserve(&self, bytes: usize) -> Result<(), SendError<()>> {
        let mut state = self.chan.state.lock();
        loop {
            if !state.receiver_alive {
                return Err(SendError(()));
            }
            if state.admits_bytes(bytes) {
                state.charge(bytes);
                return Ok(());
            }
            self.chan.not_full.wait(&mut state);
        }
    }

    /// Releases a charge previously acquired with [`Sender::reserve`]
    /// without delivering a value (the producer's error path).
    pub fn unreserve(&self, bytes: usize) {
        let mut state = self.chan.state.lock();
        state.used_bytes = state.used_bytes.saturating_sub(bytes);
        drop(state);
        self.chan.not_full.notify_all();
    }

    /// Delivers a value whose `bytes` were already charged via
    /// [`Sender::reserve`], blocking only on the count bound (the byte
    /// budget is already owned). On `Err` the reservation is released and
    /// the value handed back.
    pub fn push_reserved(&self, value: T, bytes: usize) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock();
        loop {
            if !state.receiver_alive {
                state.used_bytes = state.used_bytes.saturating_sub(bytes);
                return Err(SendError(value));
            }
            if state.buf.len() < state.capacity {
                state.buf.push_back((value, bytes));
                drop(state);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            self.chan.not_full.wait(&mut state);
        }
    }

    /// Non-blocking variant: delivers `value` only if there is room right
    /// now. Returns the value back on a full channel (`Err` with
    /// `full = true`) or a dropped receiver (`full = false`).
    pub fn try_push(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.chan.state.lock();
        if !state.receiver_alive {
            return Err(TrySendError { value, full: false });
        }
        if state.buf.len() < state.capacity && state.admits_bytes(0) {
            state.buf.push_back((value, 0));
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError { value, full: true })
        }
    }

    /// Non-blocking variant of [`Sender::reserve`]: charges `bytes` only
    /// if the budget admits them right now. `Ok(true)` means the charge
    /// was taken; `Ok(false)` means the budget is currently exhausted
    /// (nothing charged, try again later); `Err` means the receiver is
    /// gone (nothing charged). This is the reactor's edge — an event
    /// loop cannot park on a condvar, so it retries when the consumer
    /// next signals progress.
    pub fn try_reserve(&self, bytes: usize) -> Result<bool, SendError<()>> {
        let mut state = self.chan.state.lock();
        if !state.receiver_alive {
            return Err(SendError(()));
        }
        if state.admits_bytes(bytes) {
            state.charge(bytes);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Non-blocking variant of [`Sender::push_reserved`]: queues a value
    /// whose `bytes` were already charged, only if a count slot is free
    /// right now. On a full channel the value comes back with
    /// `full = true` and the reservation is **kept** (the producer still
    /// owns the charge and will retry); on a dropped receiver the value
    /// comes back with `full = false` and the reservation is released
    /// (it can never be delivered).
    pub fn try_push_reserved(&self, value: T, bytes: usize) -> Result<(), TrySendError<T>> {
        let mut state = self.chan.state.lock();
        if !state.receiver_alive {
            state.used_bytes = state.used_bytes.saturating_sub(bytes);
            return Err(TrySendError { value, full: false });
        }
        if state.buf.len() < state.capacity {
            state.buf.push_back((value, bytes));
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError { value, full: true })
        }
    }
}

/// The value and cause of a failed [`Sender::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub struct TrySendError<T> {
    /// The undelivered value.
    pub value: T,
    /// `true` when the channel was full; `false` when the receiver was
    /// dropped.
    pub full: bool,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.chan.state.lock();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake the consumer so it can observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

/// The consuming end of a [`bounded`] channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Takes the next value in FIFO order, blocking while the channel is
    /// empty. Returns `None` once every sender has been dropped **and**
    /// the buffer is drained — the clean end-of-stream signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.chan.state.lock();
        loop {
            if let Some((value, bytes)) = state.buf.pop_front() {
                state.used_bytes = state.used_bytes.saturating_sub(bytes);
                drop(state);
                // Waiters are a mix of count-bound and byte-budget
                // blockers; wake them all so whichever can now proceed
                // does (notify_one could wake only one that still can't).
                self.chan.not_full.notify_all();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            self.chan.not_empty.wait(&mut state);
        }
    }

    /// Non-blocking variant of [`Receiver::pop`]: `None` means "nothing
    /// available right now", not necessarily disconnection.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.chan.state.lock();
        if let Some((value, bytes)) = state.buf.pop_front() {
            state.used_bytes = state.used_bytes.saturating_sub(bytes);
            drop(state);
            self.chan.not_full.notify_all();
            Some(value)
        } else {
            None
        }
    }

    /// Values currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chan.state.lock().buf.len()
    }

    /// Whether the buffer is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this channel was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.chan.state.lock().capacity
    }

    /// Bytes currently charged against the budget (queued weights plus
    /// outstanding reservations).
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.chan.state.lock().used_bytes
    }

    /// High-water mark of charged bytes over the channel's lifetime — the
    /// number to compare against the budget when verifying a capacity
    /// plan.
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.chan.state.lock().peak_bytes
    }

    /// The byte budget this channel enforces (`usize::MAX` when
    /// unweighted).
    #[must_use]
    pub fn byte_budget(&self) -> usize {
        self.chan.state.lock().byte_budget
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.chan.state.lock();
            state.receiver_alive = false;
            let drained: Vec<(T, usize)> = state.buf.drain(..).collect();
            for (_, bytes) in &drained {
                state.used_bytes = state.used_bytes.saturating_sub(*bytes);
            }
            drained
        };
        // Unblock every producer parked on a full buffer.
        self.chan.not_full.notify_all();
        // Undelivered values can never be delivered now, so their
        // destructors must run *here*, not when the last sender goes away:
        // a queued value may hold the only sender of a reply channel that
        // a producer thread is blocked on, and that producer also holds a
        // Sender to *this* channel — waiting for it to drop first is a
        // deadlock. Dropping outside the lock keeps destructors free to
        // take other locks.
        drop(drained);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_order_within_one_producer() {
        let (tx, rx) = bounded(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        drop(tx);
        let drained: Vec<i32> = std::iter::from_fn(|| rx.pop()).collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn push_blocks_on_a_full_channel_instead_of_dropping() {
        let (tx, rx) = bounded(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let third_delivered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                tx.push(3).unwrap(); // must block until the consumer pops
                third_delivered.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(80));
            assert!(
                !third_delivered.load(Ordering::SeqCst),
                "push must block while the channel is full"
            );
            assert_eq!(rx.pop(), Some(1));
            // The blocked producer now gets its slot.
            while !third_delivered.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Nothing was dropped: every pushed value arrives, in order.
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        drop(tx);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn multi_producer_values_all_arrive() {
        let (tx, rx) = bounded(4);
        std::thread::scope(|s| {
            for p in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        tx.push(p * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.pop()).collect();
            got.sort_unstable();
            let mut expected: Vec<i32> = (0..4)
                .flat_map(|p| (0..25).map(move |i| p * 100 + i))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn dropping_all_senders_disconnects_after_drain() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.push("a").unwrap();
        drop(tx);
        tx2.push("b").unwrap();
        drop(tx2);
        assert_eq!(rx.pop(), Some("a"));
        assert_eq!(rx.pop(), Some("b"));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.pop(), None, "disconnect is sticky");
    }

    #[test]
    fn dropping_the_receiver_fails_pushes_with_the_value() {
        let (tx, rx) = bounded(1);
        tx.push(7).unwrap(); // fills the buffer
        std::thread::scope(|s| {
            let blocked = s.spawn(|| tx.push(8)); // parks on the full buffer
            std::thread::sleep(Duration::from_millis(50));
            drop(rx); // must wake and fail the parked producer
            assert_eq!(blocked.join().unwrap(), Err(SendError(8)));
        });
        assert_eq!(tx.push(9), Err(SendError(9)));
    }

    #[test]
    fn try_push_reports_full_and_disconnected_distinctly() {
        let (tx, rx) = bounded(1);
        tx.try_push(1).unwrap();
        let err = tx.try_push(2).unwrap_err();
        assert!(err.full);
        assert_eq!(err.value, 2);
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), None);
        drop(rx);
        let err = tx.try_push(3).unwrap_err();
        assert!(!err.full);
    }

    #[test]
    fn len_and_capacity_observe_the_buffer() {
        let (tx, rx) = bounded(3);
        assert_eq!(rx.capacity(), 3);
        assert!(rx.is_empty());
        tx.push(()).unwrap();
        tx.push(()).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        assert_eq!(rx.capacity(), 1);
        tx.push(42).unwrap();
        assert_eq!(rx.pop(), Some(42));
    }

    #[test]
    fn unweighted_channels_never_block_on_bytes() {
        let (tx, rx) = bounded(4);
        assert_eq!(rx.byte_budget(), usize::MAX);
        tx.push_weighted(1, usize::MAX / 2).unwrap();
        tx.push_weighted(2, usize::MAX / 2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.used_bytes(), 0);
    }

    #[test]
    fn byte_budget_blocks_and_releases_on_pop() {
        let (tx, rx) = bounded_weighted(8, 100);
        tx.push_weighted("a", 60).unwrap();
        let second_delivered = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                tx.push_weighted("b", 60).unwrap(); // 120 > 100: must wait
                second_delivered.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(80));
            assert!(
                !second_delivered.load(Ordering::SeqCst),
                "push_weighted must block while the byte budget is exhausted"
            );
            assert_eq!(rx.pop(), Some("a"));
            while !second_delivered.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert_eq!(rx.pop(), Some("b"));
        assert_eq!(rx.used_bytes(), 0);
        assert!(rx.peak_bytes() <= 100, "peak {} > budget", rx.peak_bytes());
    }

    #[test]
    fn oversized_item_is_admitted_when_nothing_is_charged() {
        // Blocks-never-drops even when one item exceeds the whole budget.
        let (tx, rx) = bounded_weighted(2, 10);
        tx.push_weighted(vec![0u8; 50], 50).unwrap();
        assert_eq!(rx.pop().unwrap().len(), 50);
        assert_eq!(rx.used_bytes(), 0);
    }

    #[test]
    fn reserve_charges_before_the_value_exists() {
        let (tx, rx) = bounded_weighted(8, 100);
        tx.reserve(70).unwrap();
        assert_eq!(rx.used_bytes(), 70);
        // A second reservation must wait for the first to resolve.
        let reserved = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                tx.reserve(70).unwrap();
                reserved.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(80));
            assert!(!reserved.load(Ordering::SeqCst), "reserve must block");
            // Resolving the first reservation as a push keeps its charge…
            tx.push_reserved("first", 70).unwrap();
            // …until the consumer pops it, which admits the waiter.
            assert_eq!(rx.pop(), Some("first"));
            while !reserved.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Error path: an unreserve releases the charge without a value.
        tx.unreserve(70);
        assert_eq!(rx.used_bytes(), 0);
        // The two 70-byte charges never overlapped, so the peak is 70.
        assert_eq!(rx.peak_bytes(), 70);
    }

    #[test]
    fn depth_one_small_budget_soak_blocks_never_drops() {
        // Six writers through the narrowest possible channel: depth 1 and
        // a budget smaller than two payloads. Byte accounting must not
        // break the blocks-never-drops guarantee, and the recorded peak
        // must respect the budget (no payload here exceeds it alone).
        const WRITERS: usize = 6;
        const PER_WRITER: usize = 50;
        const PAYLOAD: usize = 64;
        let (tx, rx) = bounded_weighted(1, PAYLOAD + PAYLOAD / 2);
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        tx.reserve(PAYLOAD).unwrap();
                        tx.push_reserved((w, i), PAYLOAD).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<(usize, usize)> = std::iter::from_fn(|| rx.pop()).collect();
            got.sort_unstable();
            let mut expected: Vec<(usize, usize)> = (0..WRITERS)
                .flat_map(|w| (0..PER_WRITER).map(move |i| (w, i)))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "every value must arrive exactly once");
            assert!(
                rx.peak_bytes() <= PAYLOAD + PAYLOAD / 2,
                "peak {} exceeded the byte budget",
                rx.peak_bytes()
            );
        });
    }

    #[test]
    fn dropping_the_receiver_drops_undelivered_values() {
        // A queued value may hold the only sender of a reply channel that
        // some other thread is blocked popping (the collector's commit
        // queue carries per-frame ack senders exactly like this). When the
        // receiver is dropped, the undelivered value's destructor must run
        // so the reply waiter observes a disconnect instead of wedging.
        let (tx, rx) = bounded(4);
        let (reply_tx, reply_rx) = bounded::<()>(1);
        assert!(tx.push(reply_tx).is_ok());
        std::thread::scope(|s| {
            let waiter = s.spawn(|| reply_rx.pop());
            std::thread::sleep(Duration::from_millis(50));
            drop(rx); // must drop the queued reply sender
            assert_eq!(waiter.join().unwrap(), None);
        });
        // And the channel itself reports the disconnect to new pushes.
        assert!(tx.push(bounded::<()>(1).0).is_err());
    }

    #[test]
    fn try_reserve_charges_only_when_the_budget_admits() {
        let (tx, rx) = bounded_weighted::<()>(8, 100);
        assert_eq!(tx.try_reserve(60), Ok(true));
        assert_eq!(rx.used_bytes(), 60);
        // Budget exhausted: nothing charged, caller should retry later.
        assert_eq!(tx.try_reserve(60), Ok(false));
        assert_eq!(rx.used_bytes(), 60);
        tx.unreserve(60);
        // Oversized single charge admitted when nothing is outstanding.
        assert_eq!(tx.try_reserve(500), Ok(true));
        tx.unreserve(500);
        drop(rx);
        assert_eq!(tx.try_reserve(1), Err(SendError(())));
    }

    #[test]
    fn try_push_reserved_keeps_the_charge_on_full_releases_on_disconnect() {
        let (tx, rx) = bounded_weighted(1, 100);
        tx.reserve(30).unwrap();
        tx.reserve(30).unwrap();
        tx.try_push_reserved("a", 30).unwrap();
        // Count bound hit: the value comes back, the charge stays ours.
        let err = tx.try_push_reserved("b", 30).unwrap_err();
        assert!(err.full);
        assert_eq!(err.value, "b");
        assert_eq!(rx.used_bytes(), 60, "full retry keeps the reservation");
        assert_eq!(rx.pop(), Some("a"));
        tx.try_push_reserved("b", 30).unwrap();
        assert_eq!(rx.pop(), Some("b"));
        // Disconnect: the value comes back and the charge is released.
        tx.reserve(30).unwrap();
        drop(rx);
        let err = tx.try_push_reserved("c", 30).unwrap_err();
        assert!(!err.full);
    }

    #[test]
    fn dropped_receiver_fails_reserve_and_push_reserved() {
        let (tx, rx) = bounded_weighted(2, 100);
        tx.reserve(40).unwrap();
        drop(rx);
        assert_eq!(tx.push_reserved(1, 40), Err(SendError(1)));
        assert_eq!(tx.reserve(10), Err(SendError(())));
    }
}
