//! Hierarchy-based distribution estimation under LDP (paper §4.2–4.3).
//!
//! This crate implements the hierarchical baselines the paper compares
//! against and its HH-ADMM improvement:
//!
//! - [`tree`] — index arithmetic for complete β-ary trees over a bucketized
//!   domain, including the canonical range decomposition;
//! - [`hh`] — the Hierarchical Histogram with population division (each user
//!   reports one ancestor through the lower-variance CFO for that level);
//! - [`consistency`] — Hay-style constrained inference generalized to
//!   per-level variances, whose equal-weight special case is the Euclidean
//!   projection `ΠC` used inside ADMM;
//! - [`haar`] — the discrete Haar transform and the HaarHRR estimator of
//!   Kulkarni et al. (PVLDB '19);
//! - [`admm`] — **HH-ADMM** (Algorithm 2): ADMM post-processing enforcing
//!   non-negativity, per-level normalization and tree consistency;
//! - [`range`] — range queries over (possibly signed) hierarchical
//!   estimates.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod admm;
pub mod consistency;
pub mod error;
pub mod haar;
pub mod hh;
pub mod mechanism;
pub mod range;
pub mod tree;

pub use admm::{hh_admm, hh_admm_histogram, AdmmConfig, AdmmResult};
pub use consistency::{constrained_inference, project_consistent, RootPolicy};
pub use error::HierarchyError;
pub use haar::{haar_forward, haar_inverse, HaarCoefficients, HaarHrr};
pub use hh::{HhRaw, HierarchicalHistogram};
pub use mechanism::{HaarReport, HaarState, HhReport, HhState};
pub use tree::{TreeShape, TreeValues};
