//! The unified-API conformance suite (the contract in `ldp-core`'s crate
//! docs), run against every mechanism family:
//!
//! (a) estimates obtained through streaming `Aggregator::push` equal the
//!     one-shot `Mechanism::aggregate` bit for bit;
//! (b) merging shard aggregators equals aggregating the concatenated
//!     report stream, bit for bit, at every split point tried;
//! (c) client randomization is deterministic under a fixed `SplitMix64`
//!     seed;
//! (d) the pool-sharded `Aggregator::push_slice_sharded` fan-out equals
//!     serial absorption — same raw state, same count, same estimate —
//!     for shard counts {1, 2, 7} (the CI matrix additionally varies the
//!     global pool size via `LDP_POOL_THREADS`).

use sw_ldp::cfo::{Grr, Hrr, Olh, Oue};
use sw_ldp::core_api::{Aggregator, Client, Mechanism};
use sw_ldp::mean::{Hybrid, Pm, Sr};
use sw_ldp::numeric::SplitMix64;
use sw_ldp::sw::SwMechanism;

/// Bitwise comparison that treats equal-bit NaNs as equal (no mechanism
/// emits NaN, so any NaN mismatch is a real failure).
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: entry {i} differs ({x} vs {y})"
        );
    }
}

/// Runs the full (a)/(b)/(c) contract for one mechanism configuration.
fn conformance<M, F>(label: &str, mechanism: M, inputs: &[M::Input], canon: F, seed: u64)
where
    M: Mechanism + Clone + Sync,
    M::Input: Sized,
    M::Report: Clone + PartialEq + std::fmt::Debug + Sync,
    M::State: Send,
    F: Fn(&M::Output) -> Vec<f64>,
{
    let client = Client::new(&mechanism);

    // (c) determinism: the same seed produces the same wire reports.
    let randomize_all = |seed: u64| -> Vec<M::Report> {
        let mut rng = SplitMix64::new(seed);
        inputs
            .iter()
            .map(|v| client.randomize(v, &mut rng).unwrap())
            .collect()
    };
    let reports = randomize_all(seed);
    assert_eq!(
        reports,
        randomize_all(seed),
        "{label}: randomization must be deterministic under a fixed seed"
    );

    // (a) streaming == one-shot, bit for bit.
    let one_shot = canon(&mechanism.aggregate(&reports).unwrap());
    let mut streaming = Aggregator::new(mechanism.clone());
    for r in &reports {
        streaming.push(r).unwrap();
    }
    assert_eq!(streaming.count(), reports.len() as u64, "{label}: count");
    assert_bits_eq(
        &canon(&streaming.finalize().unwrap()),
        &one_shot,
        &format!("{label}: streaming vs one-shot"),
    );

    // (b) merge of two shards == aggregation of the concatenation, for a
    // spread of split points including the degenerate ones.
    let n = reports.len();
    for split in [0, 1, n / 3, n / 2, n - 1, n] {
        let mut left = Aggregator::new(mechanism.clone());
        left.push_slice(&reports[..split]).unwrap();
        let mut right = Aggregator::new(mechanism.clone());
        right.push_slice(&reports[split..]).unwrap();
        left.merge(&right).unwrap();
        assert_eq!(left.count(), n as u64);
        assert_bits_eq(
            &canon(&left.finalize().unwrap()),
            &one_shot,
            &format!("{label}: merge at split {split}"),
        );
    }

    // (d) the pooled fan-out equals serial absorption: identical count,
    // bit-identical estimate, for every shard count. (ExactSum-backed
    // states guarantee a bit-identical *rendered* total across shardings,
    // not an identical internal expansion layout — the same contract the
    // merge legs above pin.)
    for shards in [1usize, 2, 7] {
        let mut pooled = Aggregator::new(mechanism.clone());
        pooled.push_slice_sharded(&reports, shards).unwrap();
        assert_eq!(pooled.count(), streaming.count(), "{label}: pooled count");
        assert_bits_eq(
            &canon(&pooled.finalize().unwrap()),
            &one_shot,
            &format!("{label}: pooled fan-out over {shards} shards"),
        );
    }

    // And a three-way merge in shuffled order, since production shards
    // arrive in no particular order.
    let (a, rest) = reports.split_at(n / 4);
    let (b, c) = rest.split_at(n / 3);
    let mut mid = Aggregator::new(mechanism.clone());
    mid.push_slice(b).unwrap();
    let mut tail = Aggregator::new(mechanism.clone());
    tail.push_slice(c).unwrap();
    let mut head = Aggregator::new(mechanism.clone());
    head.push_slice(a).unwrap();
    tail.merge(&head).unwrap();
    tail.merge(&mid).unwrap();
    assert_bits_eq(
        &canon(&tail.finalize().unwrap()),
        &one_shot,
        &format!("{label}: out-of-order three-way merge"),
    );
}

fn unit_values(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i % 173) as f64 / 173.0).collect()
}

fn signed_values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 29) % 201) as f64 / 100.0 - 1.0)
        .collect()
}

fn categorical_values(n: usize, d: usize) -> Vec<usize> {
    (0..n).map(|i| (i * 7) % d).collect()
}

#[test]
fn sw_conforms() {
    conformance(
        "SW-EMS",
        SwMechanism::ems(1.0, 32).unwrap(),
        &unit_values(3_000),
        |h| h.probs().to_vec(),
        101,
    );
    conformance(
        "SW-EM",
        SwMechanism::em(1.0, 32).unwrap(),
        &unit_values(3_000),
        |h| h.probs().to_vec(),
        102,
    );
}

#[test]
fn grr_conforms() {
    conformance(
        "GRR",
        Grr::new(16, 1.0).unwrap(),
        &categorical_values(3_000, 16),
        Clone::clone,
        103,
    );
}

#[test]
fn olh_conforms() {
    conformance(
        "OLH",
        Olh::new(32, 1.0).unwrap(),
        &categorical_values(3_000, 32),
        Clone::clone,
        104,
    );
}

#[test]
fn oue_conforms() {
    conformance(
        "OUE",
        Oue::new(24, 1.0).unwrap(),
        &categorical_values(3_000, 24),
        Clone::clone,
        105,
    );
}

#[test]
fn hadamard_conforms() {
    conformance(
        "Hadamard-RR",
        Hrr::new(20, 1.0).unwrap(),
        &categorical_values(3_000, 20),
        Clone::clone,
        106,
    );
}

#[test]
fn pm_conforms() {
    // Continuous reports: the case exact summation exists for.
    conformance(
        "PM",
        Pm::new(1.0).unwrap(),
        &signed_values(3_000),
        |mean| vec![*mean],
        107,
    );
}

#[test]
fn sr_conforms() {
    conformance(
        "SR",
        Sr::new(0.8).unwrap(),
        &signed_values(3_000),
        |mean| vec![*mean],
        108,
    );
}

#[test]
fn hybrid_conforms() {
    conformance(
        "Hybrid",
        Hybrid::new(2.0).unwrap(),
        &signed_values(3_000),
        |mean| vec![*mean],
        109,
    );
    // Below ε* the PM arm is off; the SR-only regime must also conform.
    conformance(
        "Hybrid-low-eps",
        Hybrid::new(0.4).unwrap(),
        &signed_values(2_000),
        |mean| vec![*mean],
        110,
    );
}

/// Shards built for different configurations must refuse to merge, for
/// every mechanism family.
#[test]
fn cross_configuration_merges_are_rejected() {
    fn rejects<M: Mechanism + Clone>(a: M, b: M) {
        let mut left: Aggregator<M> = Aggregator::new(a);
        let right: Aggregator<M> = Aggregator::new(b);
        assert!(left.merge(&right).is_err());
    }
    rejects(
        SwMechanism::ems(1.0, 32).unwrap(),
        SwMechanism::ems(2.0, 32).unwrap(),
    );
    rejects(Grr::new(8, 1.0).unwrap(), Grr::new(8, 2.0).unwrap());
    rejects(Olh::new(8, 1.0).unwrap(), Olh::new(16, 1.0).unwrap());
    rejects(Oue::new(8, 1.0).unwrap(), Oue::new(8, 2.0).unwrap());
    rejects(Hrr::new(8, 1.0).unwrap(), Hrr::new(16, 1.0).unwrap());
    rejects(Pm::new(1.0).unwrap(), Pm::new(2.0).unwrap());
    rejects(Sr::new(1.0).unwrap(), Sr::new(2.0).unwrap());
    rejects(Hybrid::new(1.0).unwrap(), Hybrid::new(2.0).unwrap());
}
