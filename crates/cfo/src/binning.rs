//! CFO with binning (paper §4.1): the baseline distribution estimator that
//! discretizes `[0, 1]` into `c` bins, runs the lower-variance CFO (GRR or
//! OLH) over the bins, repairs the estimate with Norm-Sub, and spreads each
//! bin's mass uniformly to reach the evaluation granularity `d`.
//!
//! The bin count trades noise against bias (§4.1 "Challenge of Choosing Bin
//! Size"): more bins mean more noise per bin, fewer bins mean more
//! within-bin bias. The paper reports c ∈ {16, 32, 64}.

use crate::error::CfoError;
use crate::oracle::FrequencyOracle;
use crate::postprocess::norm_sub;
use crate::select::AdaptiveOracle;
use ldp_numeric::histogram::{bucket_of, Histogram};
use rand::Rng;

/// The "CFO with binning" distribution estimator.
#[derive(Debug, Clone)]
pub struct BinningEstimator {
    bins: usize,
    target_d: usize,
    oracle: AdaptiveOracle,
}

impl BinningEstimator {
    /// Creates an estimator with `bins` CFO bins, reporting the final
    /// distribution at `target_d` buckets (`bins` must divide `target_d`).
    pub fn new(bins: usize, target_d: usize, eps: f64) -> Result<Self, CfoError> {
        ldp_core::Domain::new(bins)?;
        if target_d == 0 || !target_d.is_multiple_of(bins) {
            return Err(CfoError::InvalidParameter(format!(
                "bin count {bins} must divide the target granularity {target_d}"
            )));
        }
        Ok(BinningEstimator {
            bins,
            target_d,
            oracle: AdaptiveOracle::new(bins, eps)?,
        })
    }

    /// Number of CFO bins `c`.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Final histogram granularity `d`.
    #[must_use]
    pub fn target_d(&self) -> usize {
        self.target_d
    }

    /// Which base oracle was selected for the bin domain.
    #[must_use]
    pub fn oracle_kind(&self) -> crate::select::OracleKind {
        self.oracle.kind()
    }

    /// The underlying adaptive oracle (shared with the `Mechanism` impl).
    pub(crate) fn oracle(&self) -> &AdaptiveOracle {
        &self.oracle
    }

    /// Runs the full pipeline over users' private values in `[0, 1]`:
    /// bin → randomize → aggregate → Norm-Sub → uniform expansion.
    pub fn estimate<R: Rng + ?Sized>(
        &self,
        values: &[f64],
        rng: &mut R,
    ) -> Result<Histogram, CfoError> {
        if values.is_empty() {
            return Err(CfoError::InvalidParameter(
                "need at least one user report".into(),
            ));
        }
        let bin_values: Vec<usize> = values.iter().map(|&v| bucket_of(v, self.bins)).collect();
        let raw = self.oracle.run(&bin_values, rng)?;
        let repaired = norm_sub(&raw, 1.0);
        let coarse = Histogram::from_probs(repaired)
            .map_err(|e| CfoError::InvalidParameter(e.to_string()))?;
        coarse
            .expand_uniform(self.target_d / self.bins)
            .map_err(|e| CfoError::InvalidParameter(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn construction_validates() {
        assert!(BinningEstimator::new(1, 256, 1.0).is_err());
        assert!(BinningEstimator::new(16, 100, 1.0).is_err());
        assert!(BinningEstimator::new(16, 0, 1.0).is_err());
        assert!(BinningEstimator::new(16, 256, 1.0).is_ok());
    }

    #[test]
    fn estimate_returns_valid_distribution() {
        let est = BinningEstimator::new(16, 256, 1.0).unwrap();
        let mut rng = SplitMix64::new(61);
        let values: Vec<f64> = (0..20_000).map(|i| (i % 100) as f64 / 100.0).collect();
        let h = est.estimate(&values, &mut rng).unwrap();
        assert_eq!(h.len(), 256);
        assert!(h.probs().iter().all(|&p| p >= 0.0));
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_recovers_concentrated_mass() {
        // All users in [0.5, 0.5625) = bin 8 of 16.
        let est = BinningEstimator::new(16, 256, 4.0).unwrap();
        let mut rng = SplitMix64::new(62);
        let values = vec![0.53; 50_000];
        let h = est.estimate(&values, &mut rng).unwrap();
        let mass_in_bin: f64 = h.range_mass(0.5, 0.5625);
        assert!(mass_in_bin > 0.9, "mass {mass_in_bin}");
    }

    #[test]
    fn estimate_rejects_empty_input() {
        let est = BinningEstimator::new(16, 256, 1.0).unwrap();
        let mut rng = SplitMix64::new(63);
        assert!(est.estimate(&[], &mut rng).is_err());
    }

    #[test]
    fn small_bin_count_uses_grr_large_uses_olh() {
        use crate::select::OracleKind;
        let small = BinningEstimator::new(8, 256, 1.0).unwrap();
        assert_eq!(small.oracle_kind(), OracleKind::Grr);
        let large = BinningEstimator::new(64, 256, 1.0).unwrap();
        assert_eq!(large.oracle_kind(), OracleKind::Olh);
    }

    #[test]
    fn coarser_bins_have_flat_within_bin_density() {
        let est = BinningEstimator::new(4, 16, 8.0).unwrap();
        let mut rng = SplitMix64::new(64);
        let values = vec![0.1; 20_000];
        let h = est.estimate(&values, &mut rng).unwrap();
        // Buckets 0..4 (the first bin) should carry equal mass.
        let p = h.probs();
        for i in 1..4 {
            assert!((p[i] - p[0]).abs() < 1e-12);
        }
    }
}
