//! Perf trajectory benches for the structured transition operator and the
//! batched client path (recorded into `BENCH_em.json` by
//! `scripts/bench_record.sh`).
//!
//! - `em_fixed/{dense,structured}_d{D}_iters{K}`: EM over exactly `K`
//!   iterations at `d = d̃ = D`, dense matrix vs `BandedBaselineOperator`.
//!   Per-iteration cost = reported ns / `K`.
//! - `client_batch/randomize_n{N}_w{W}`: perturbing `N` reports across `W`
//!   shards on the shared `ldp-pool` worker pool; reports/sec =
//!   `N / (ns · 1e-9)`.
//! - `grid/sw_ems_jobs{J}_d{D}`: a figure-6-style `run_grid` slice of `J`
//!   (ε × trial) jobs through `parallel_jobs`; per-trial cost = ns / `J`.
//! - `bootstrap/replicates{R}_d{D}`: Poisson bootstrap with `R` replicates
//!   on the pool; per-replicate cost = ns / `R`.
//! - `streaming/{legacy,push_slice,one_shot}_n{N}_d{D}`: server-side
//!   aggregation of `N` pre-randomized reports + EMS reconstruction —
//!   the pre-redesign `ShardAggregator` path vs. chunked
//!   `Aggregator::push_slice` vs. one-shot `Mechanism::aggregate` through
//!   the unified `ldp-core` API; per-report cost = ns / `N`. The three
//!   must stay at parity: the API redesign is free on the hot path.
//! - `absorb/{family}_n{N}`: bulk `Aggregator::push_slice` absorption of
//!   `N` pre-randomized reports per mechanism family — the SIMD/unrolled
//!   kernel path; per-report cost = ns / `N`.
//! - `absorb_push/{family}_n{N}`: the same ingest through per-report
//!   `Aggregator::push` — the scalar serial baseline the kernels are
//!   measured against (speedup = absorb_push / absorb).
//! - `absorb_pooled/{family}_n{N}_w{W}`: bulk ingest through the
//!   pool-sharded `Aggregator::push_slice_sharded` fan-out with `W`
//!   shards on the shared `ldp-pool` worker pool.
//!
//! `BENCH_SMOKE=1` switches to a seconds-long configuration for CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldp_cfo::{Grr, Hrr, Olh, Oue};
use ldp_core::{Aggregator, Client, Mechanism};
use ldp_experiments::{run_grid, ExperimentConfig, Method};
use ldp_hierarchy::{HaarHrr, HierarchicalHistogram};
use ldp_mean::{Hybrid, Pm};
use ldp_numeric::Histogram;
use ldp_sw::{
    bootstrap, optimal_b, reconstruct, transition_matrix, BandedBaselineOperator, BootstrapConfig,
    EmConfig, Reconstruction, ShardAggregator, SwMechanism, SwPipeline, Wave,
};
use std::time::Duration;

/// Fixed EM iteration count so dense and structured runs do identical work.
const EM_ITERS: usize = 32;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").as_deref() == Ok("1")
}

/// An EmConfig that runs exactly `iters` iterations (early stop disabled).
fn fixed_iters(iters: usize) -> EmConfig {
    EmConfig {
        ll_threshold: 0.0,
        max_iterations: iters,
        min_iterations: iters + 1,
        smoothing: None,
    }
}

/// Expected report counts for a smooth bimodal truth — EM sees realistic,
/// strictly positive conditionals without any sampling noise in the bench.
fn expected_counts(m: &ldp_numeric::Matrix, d: usize) -> Vec<f64> {
    let mut truth: Vec<f64> = (0..d)
        .map(|i| {
            let x = (i as f64 + 0.5) / d as f64;
            (-(x - 0.3).powi(2) / 0.02).exp() + 0.6 * (-(x - 0.75).powi(2) / 0.01).exp()
        })
        .collect();
    let s: f64 = truth.iter().sum();
    for t in &mut truth {
        *t /= s;
    }
    m.matvec(&truth).unwrap().iter().map(|p| p * 1e6).collect()
}

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_fixed");
    if smoke() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
    }
    let dims: &[usize] = if smoke() { &[256] } else { &[256, 1024] };
    let eps = 1.0;
    let wave = Wave::square(optimal_b(eps).unwrap(), eps).unwrap();
    for &d in dims {
        let m = transition_matrix(&wave, d, d).unwrap();
        let op = BandedBaselineOperator::from_wave(&wave, d, d).unwrap();
        let counts = expected_counts(&m, d);
        let config = fixed_iters(EM_ITERS);
        group.bench_function(format!("dense_d{d}_iters{EM_ITERS}"), |b| {
            b.iter(|| reconstruct(black_box(&m), black_box(&counts), &config).unwrap())
        });
        group.bench_function(format!("structured_d{d}_iters{EM_ITERS}"), |b| {
            b.iter(|| reconstruct(black_box(&op), black_box(&counts), &config).unwrap())
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_batch");
    if smoke() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2));
    }
    let n: usize = if smoke() { 20_000 } else { 400_000 };
    let pipeline = SwPipeline::new(1.0, 256).unwrap();
    let values: Vec<f64> = (0..n).map(|i| (i % 9973) as f64 / 9973.0).collect();
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("randomize_n{n}_w{workers}"), |b| {
            b.iter(|| {
                pipeline
                    .randomize_batch(black_box(&values), workers, 7)
                    .unwrap()
            })
        });
    }
    group.bench_function(format!("aggregate_n{n}_w4"), |b| {
        b.iter(|| pipeline.aggregate_batch(black_box(&values), 4, 7).unwrap())
    });
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    if smoke() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(400));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
    }
    let d = 64;
    let n = if smoke() { 1_000 } else { 4_000 };
    let values: Vec<f64> = (0..n).map(|i| ((i * 13) % 1000) as f64 / 1000.0).collect();
    let truth = Histogram::from_samples(&values, d).unwrap();
    // A figure-6-style slice: one method, a small ε × trial grid running
    // through `parallel_jobs` on the shared pool.
    let config = ExperimentConfig {
        epsilons: vec![0.5, 1.0, 2.0],
        repeats: if smoke() { 2 } else { 8 },
        scale: 1.0,
        seed: 23,
        range_queries: 20,
        ..ExperimentConfig::default()
    };
    let jobs = config.epsilons.len() * config.repeats;
    group.bench_function(format!("sw_ems_jobs{jobs}_d{d}"), |b| {
        b.iter(|| run_grid(&[Method::SwEms], black_box(&values), &truth, d, &config).unwrap())
    });
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap");
    if smoke() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(400));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
    }
    let d = 64;
    let replicates = if smoke() { 10 } else { 30 };
    let pipeline = SwPipeline::new(1.0, d).unwrap();
    let values: Vec<f64> = (0..60_000).map(|i| (i % 4093) as f64 / 4093.0).collect();
    let counts = pipeline.aggregate_batch(&values, 4, 7).unwrap().to_counts();
    let config = BootstrapConfig {
        replicates,
        ..BootstrapConfig::default()
    };
    group.bench_function(format!("replicates{replicates}_d{d}"), |b| {
        b.iter(|| {
            let mut rng = ldp_numeric::SplitMix64::new(11);
            bootstrap(pipeline.operator(), black_box(&counts), &config, &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming");
    if smoke() {
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(400));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
    }
    let d = 256;
    let n: usize = if smoke() { 20_000 } else { 200_000 };
    let mech = SwMechanism::ems(1.0, d).unwrap();
    let client = Client::new(&mech);
    let mut rng = ldp_numeric::SplitMix64::new(17);
    let values: Vec<f64> = (0..n).map(|i| (i % 9973) as f64 / 9973.0).collect();
    let reports = client.randomize_batch(&values, &mut rng).unwrap();

    // Pre-redesign baseline: ShardAggregator bulk ingest + pipeline
    // reconstruct.
    group.bench_function(format!("legacy_n{n}_d{d}"), |b| {
        b.iter(|| {
            let mut agg = ShardAggregator::for_pipeline(mech.pipeline());
            agg.push_slice(black_box(&reports)).unwrap();
            mech.pipeline()
                .reconstruct(&agg.to_counts(), &Reconstruction::Ems)
                .unwrap()
                .histogram
        })
    });
    // Unified API, streaming ingestion in collector-sized chunks.
    group.bench_function(format!("push_slice_n{n}_d{d}"), |b| {
        b.iter(|| {
            let mut agg = Aggregator::new(&mech);
            for chunk in black_box(&reports).chunks(8 * 1024) {
                agg.push_slice(chunk).unwrap();
            }
            agg.finalize().unwrap()
        })
    });
    // Unified API, one-shot server side.
    group.bench_function(format!("one_shot_n{n}_d{d}"), |b| {
        b.iter(|| mech.aggregate(black_box(&reports)).unwrap())
    });
    group.finish();
}

/// Pre-randomized report streams for the absorb benches, one per family.
fn absorb_reports<M: Mechanism>(mech: &M, inputs: &[M::Input], seed: u64) -> Vec<M::Report>
where
    M::Input: Sized,
{
    let client = Client::new(mech);
    let mut rng = ldp_numeric::SplitMix64::new(seed);
    inputs
        .iter()
        .map(|v| client.randomize(v, &mut rng).unwrap())
        .collect()
}

fn bench_absorb(c: &mut Criterion) {
    let n: usize = if smoke() { 10_000 } else { 100_000 };
    let unit: Vec<f64> = (0..n).map(|i| (i % 9973) as f64 / 9973.0).collect();
    let signed: Vec<f64> = (0..n)
        .map(|i| ((i * 31) % 2001) as f64 / 1000.0 - 1.0)
        .collect();
    let cat = |d: usize| -> Vec<usize> { (0..n).map(|i| (i * 13) % d).collect() };

    let grr = Grr::new(64, 1.0).unwrap();
    let grr_reports = absorb_reports(&grr, &cat(64), 41);
    let olh = Olh::new(64, 1.0).unwrap();
    let olh_reports = absorb_reports(&olh, &cat(64), 42);
    let oue = Oue::new(1024, 1.0).unwrap();
    let oue_reports = absorb_reports(&oue, &cat(1024), 43);
    let hrr = Hrr::new(256, 1.0).unwrap();
    let hrr_reports = absorb_reports(&hrr, &cat(256), 44);
    let sw = SwMechanism::ems(1.0, 256).unwrap();
    let sw_reports = absorb_reports(&sw, &unit, 45);
    let pm = Pm::new(1.0).unwrap();
    let pm_reports = absorb_reports(&pm, &signed, 46);
    let hybrid = Hybrid::new(2.0).unwrap();
    let hybrid_reports = absorb_reports(&hybrid, &signed, 47);
    let hh = HierarchicalHistogram::new(4, 256, 1.0).unwrap();
    let hh_reports = absorb_reports(&hh, &cat(256), 48);
    let haar = HaarHrr::new(256, 1.0).unwrap();
    let haar_reports = absorb_reports(&haar, &cat(256), 49);

    macro_rules! each_family {
        ($m:ident) => {
            $m!(grr, grr_reports);
            $m!(olh, olh_reports);
            $m!(oue, oue_reports);
            $m!(hrr, hrr_reports);
            $m!(sw, sw_reports);
            $m!(pm, pm_reports);
            $m!(hybrid, hybrid_reports);
            $m!(hh, hh_reports);
            $m!(haar, haar_reports);
        };
    }

    let configure = |group: &mut criterion::BenchmarkGroup| {
        if smoke() {
            group
                .sample_size(2)
                .warm_up_time(Duration::from_millis(50))
                .measurement_time(Duration::from_millis(200));
        } else {
            group
                .sample_size(10)
                .warm_up_time(Duration::from_millis(300))
                .measurement_time(Duration::from_secs(2));
        }
    };

    let mut group = c.benchmark_group("absorb");
    configure(&mut group);
    macro_rules! slice_bench {
        ($mech:ident, $reports:ident) => {
            group.bench_function(format!("{}_n{n}", stringify!($mech)), |b| {
                b.iter(|| {
                    let mut agg = Aggregator::new(&$mech);
                    agg.push_slice(black_box(&$reports)).unwrap();
                    agg.count()
                })
            });
        };
    }
    each_family!(slice_bench);
    group.finish();

    let mut group = c.benchmark_group("absorb_push");
    configure(&mut group);
    macro_rules! push_bench {
        ($mech:ident, $reports:ident) => {
            group.bench_function(format!("{}_n{n}", stringify!($mech)), |b| {
                b.iter(|| {
                    let mut agg = Aggregator::new(&$mech);
                    for r in black_box(&$reports) {
                        agg.push(r).unwrap();
                    }
                    agg.count()
                })
            });
        };
    }
    each_family!(push_bench);
    group.finish();

    let mut group = c.benchmark_group("absorb_pooled");
    configure(&mut group);
    macro_rules! pooled_bench {
        ($mech:ident, $reports:ident) => {
            for w in [2usize, 4] {
                group.bench_function(format!("{}_n{n}_w{w}", stringify!($mech)), |b| {
                    b.iter(|| {
                        let mut agg = Aggregator::new(&$mech);
                        agg.push_slice_sharded(black_box(&$reports), w).unwrap();
                        agg.count()
                    })
                });
            }
        };
    }
    each_family!(pooled_bench);
    group.finish();
}

criterion_group!(
    benches,
    bench_em,
    bench_batch,
    bench_grid,
    bench_bootstrap,
    bench_streaming,
    bench_absorb
);
criterion_main!(benches);
