//! Bandwidth selection for wave mechanisms (paper §5.3).
//!
//! The paper chooses `b` to maximize an upper bound on the mutual
//! information between the mechanism's input and output:
//!
//! ```text
//! I(V, Ṽ) ≤ log((2b + 1) / (2b·eᵉ + 1)) + 2bεeᵉ / (2b·eᵉ + 1)
//! ```
//!
//! Setting the derivative to zero yields the closed form
//! `b* = (ε·eᵉ − eᵉ + 1) / (2eᵉ(eᵉ − 1 − ε))`. As ε → ∞, b* → 0 (sharper
//! waves carry more signal); as ε → 0, b* → ½ (the output domain doubles
//! the input domain).

use crate::error::SwError;
use ldp_core::Epsilon;

/// The mutual-information upper bound the paper maximizes (as a function of
/// `b` for fixed ε). Exposed so the optimality of [`optimal_b`] can be
/// checked numerically (Figure 6's dotted line).
#[must_use]
pub fn mi_upper_bound(b: f64, eps: f64) -> f64 {
    let e = eps.exp();
    ((2.0 * b + 1.0) / (2.0 * b * e + 1.0)).ln() + 2.0 * b * eps * e / (2.0 * b * e + 1.0)
}

/// The closed-form bandwidth maximizing [`mi_upper_bound`].
///
/// For very small ε the closed form suffers catastrophic cancellation, so a
/// second-order series (`b ≈ ½ − ε/3`) takes over below `ε = 1e-3`.
pub fn optimal_b(eps: f64) -> Result<f64, SwError> {
    Epsilon::new(eps)?;
    if eps < 1e-3 {
        return Ok(0.5 - eps / 3.0);
    }
    let e = eps.exp();
    let numerator = eps * e - e + 1.0;
    let denominator = 2.0 * e * (e - 1.0 - eps);
    let b = numerator / denominator;
    if !(b > 0.0) || !b.is_finite() {
        return Err(SwError::InvalidBandwidth(b));
    }
    Ok(b)
}

/// Grid-searches the MI bound over `b ∈ (0, 0.5]`; used in tests and the
/// Figure 6 ablation to confirm the closed form.
#[must_use]
pub fn optimal_b_numeric(eps: f64, grid: usize) -> f64 {
    let grid = grid.max(2);
    let mut best_b = 0.5;
    let mut best = f64::NEG_INFINITY;
    for k in 1..=grid {
        let b = 0.5 * k as f64 / grid as f64;
        let v = mi_upper_bound(b, eps);
        if v > best {
            best = v;
            best_b = b;
        }
    }
    best_b
}

/// The discrete bandwidth for a bucketized domain of size `d`
/// (paper §5.4): `b_discrete = ⌊b*·d⌋`, with a floor of 0 permitted — a
/// zero-width discrete wave degenerates to reporting the bucket itself with
/// GRR-style probabilities.
pub fn optimal_b_discrete(eps: f64, d: usize) -> Result<usize, SwError> {
    if d == 0 {
        return Err(SwError::InvalidParameter(
            "domain size must be positive".into(),
        ));
    }
    let b = optimal_b(eps)?;
    Ok((b * d as f64).floor() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values_from_figure_6() {
        // The paper's Figure 6 captions: b_SW = 0.256 (ε=1), 0.129 (ε=2),
        // 0.064 (ε=3), 0.030 (ε=4).
        assert!((optimal_b(1.0).unwrap() - 0.256).abs() < 5e-3);
        assert!((optimal_b(2.0).unwrap() - 0.129).abs() < 5e-3);
        assert!((optimal_b(3.0).unwrap() - 0.064).abs() < 5e-3);
        assert!((optimal_b(4.0).unwrap() - 0.030).abs() < 5e-3);
    }

    #[test]
    fn limits_match_the_paper() {
        // ε → 0 gives b → 1/2; ε → ∞ gives b → 0.
        assert!((optimal_b(1e-6).unwrap() - 0.5).abs() < 1e-3);
        assert!(optimal_b(20.0).unwrap() < 1e-4);
    }

    #[test]
    fn b_is_nonincreasing_in_eps() {
        let mut last = f64::INFINITY;
        for k in 1..100 {
            let eps = k as f64 * 0.1;
            let b = optimal_b(eps).unwrap();
            assert!(b <= last + 1e-12, "b not monotone at eps={eps}");
            last = b;
        }
    }

    #[test]
    fn closed_form_matches_numeric_argmax() {
        for &eps in &[0.5, 1.0, 1.5, 2.0, 3.0, 4.0] {
            let closed = optimal_b(eps).unwrap();
            let numeric = optimal_b_numeric(eps, 20_000);
            assert!(
                (closed - numeric).abs() < 1e-3,
                "eps={eps}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn mi_bound_is_maximized_at_closed_form() {
        for &eps in &[0.5, 1.0, 2.0] {
            let b = optimal_b(eps).unwrap();
            let at_opt = mi_upper_bound(b, eps);
            for &db in &[-0.05, -0.01, 0.01, 0.05] {
                let other = b + db;
                if other > 0.0 {
                    assert!(
                        mi_upper_bound(other, eps) <= at_opt + 1e-12,
                        "eps={eps} b={b} db={db}"
                    );
                }
            }
        }
    }

    #[test]
    fn discrete_bandwidth_scales_with_domain() {
        let b256 = optimal_b_discrete(1.0, 256).unwrap();
        let b1024 = optimal_b_discrete(1.0, 1024).unwrap();
        // b* ~ 0.256: expect ~65 and ~262.
        assert!((60..=70).contains(&b256), "b256={b256}");
        assert!((255..=270).contains(&b1024), "b1024={b1024}");
        assert!(optimal_b_discrete(1.0, 0).is_err());
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(optimal_b(0.0).is_err());
        assert!(optimal_b(f64::NAN).is_err());
        assert!(optimal_b(-1.0).is_err());
    }
}
