//! The Square Wave mechanism with EM/EMS reconstruction — the primary
//! contribution of *"Estimating Numerical Distributions under Local
//! Differential Privacy"* (Li et al., SIGMOD 2020).
//!
//! The crate is organized to mirror the paper:
//!
//! - [`wave`] — General Wave mechanisms (§5.1) and the Square Wave (§5.2):
//!   square, trapezoid and triangle shapes, each satisfying ε-LDP by
//!   construction, with exact per-interval output masses;
//! - [`bandwidth`] — the mutual-information bandwidth rule
//!   `b* = (εeᵉ − eᵉ + 1)/(2eᵉ(eᵉ − 1 − ε))` (§5.3);
//! - [`transition`] — exact `d̃ × d` transition matrices (§5.5);
//! - [`discrete`] — the bucketize-before-randomize variant (§5.4);
//! - [`em`] / [`smoothing`] — Expectation Maximization (Algorithm 1) and
//!   the binomial S-step that turns it into EMS;
//! - [`operator`] — the structured `baseline + band` form of the
//!   transition matrix, giving `O(d)` EM iterations;
//! - [`pipeline`] — the end-to-end client/aggregator API, including the
//!   multi-threaded `randomize_batch` / `aggregate_batch` client path;
//! - [`mechanism`] — [`SwMechanism`], the pipeline exposed through the
//!   workspace-wide [`ldp_core::Mechanism`] trait (streaming
//!   `Client`/`Aggregator` split with exact shard merges).
//!
//! # Quick example
//!
//! ```
//! use ldp_sw::{Reconstruction, SwPipeline};
//! use ldp_numeric::SplitMix64;
//!
//! // 10k users with private values in [0, 1].
//! let values: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
//! let pipeline = SwPipeline::new(1.0, 64).expect("valid epsilon and granularity");
//! let mut rng = SplitMix64::new(7);
//! let estimate = pipeline
//!     .estimate(&values, &Reconstruction::Ems, &mut rng)
//!     .expect("reconstruction succeeds");
//! assert_eq!(estimate.len(), 64);
//! ```

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod bandwidth;
mod batch;
pub mod bootstrap;
pub mod discrete;
pub mod em;
pub mod error;
pub mod inversion;
pub mod mechanism;
pub mod operator;
pub mod pipeline;
pub mod smoothing;
pub mod transition;
pub mod wave;

pub use aggregator::ShardAggregator;
pub use bandwidth::{mi_upper_bound, optimal_b, optimal_b_discrete};
pub use batch::default_shards;
pub use bootstrap::{bootstrap, BootstrapConfig, BootstrapResult};
pub use discrete::DiscreteSw;
pub use em::{reconstruct, EmConfig, EmResult};
pub use error::SwError;
pub use inversion::{invert_signed, reconstruct_inversion};
pub use mechanism::SwMechanism;
pub use operator::BandedBaselineOperator;
pub use pipeline::{pipeline_with_shape, Reconstruction, SwPipeline};
pub use smoothing::SmoothingKernel;
pub use transition::{discrete_transition_matrix, transition_matrix};
pub use wave::{Wave, WaveShape};
