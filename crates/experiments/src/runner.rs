//! The multi-threaded trial loop shared by every figure.

use crate::config::ExperimentConfig;
use crate::error::ExperimentError;
use crate::methods::{run_method, Estimate, Method};
use ldp_metrics as metrics;
use ldp_numeric::rng::mix64;
use ldp_numeric::{Histogram, SplitMix64};

/// All metrics computed for one trial (fields are `None` when the method
/// does not support the metric — Table 2).
#[derive(Debug, Clone, Default)]
pub struct TrialMetrics {
    /// Wasserstein distance to the true distribution.
    pub w1: Option<f64>,
    /// Kolmogorov–Smirnov distance.
    pub ks: Option<f64>,
    /// Range-query MAE at α = 0.1.
    pub rq_01: Option<f64>,
    /// Range-query MAE at α = 0.4.
    pub rq_04: Option<f64>,
    /// Absolute mean error.
    pub mean_err: Option<f64>,
    /// Absolute variance error.
    pub var_err: Option<f64>,
    /// Mean absolute quantile error over the paper's levels.
    pub quantile_err: Option<f64>,
}

/// Runs one method once and evaluates every applicable metric.
pub fn evaluate_trial(
    method: Method,
    values: &[f64],
    truth: &Histogram,
    d: usize,
    eps: f64,
    seed: u64,
    range_queries: usize,
) -> Result<TrialMetrics, ExperimentError> {
    let estimate = run_method(method, values, d, eps, seed)?;
    // Separate, method-independent stream for the random range queries so
    // every method answers the same queries in a given trial.
    let mut rq_rng = SplitMix64::new(mix64(seed ^ 0x5EED_CAFE));
    let mut out = TrialMetrics::default();
    match &estimate {
        Estimate::Distribution(h) => {
            out.w1 = Some(metrics::wasserstein(truth, h)?);
            out.ks = Some(metrics::ks_distance(truth, h)?);
            out.rq_01 = Some(metrics::range_query_mae(
                truth,
                h,
                0.1,
                range_queries,
                &mut rq_rng,
            )?);
            out.rq_04 = Some(metrics::range_query_mae(
                truth,
                h,
                0.4,
                range_queries,
                &mut rq_rng,
            )?);
            out.mean_err = Some(metrics::mean_error(truth, h)?);
            out.var_err = Some(metrics::variance_error(truth, h)?);
            out.quantile_err = Some(metrics::quantile_mae(truth, h, &metrics::paper_levels())?);
        }
        Estimate::SignedLeaves(leaves) => {
            out.rq_01 = Some(metrics::range_query_mae_signed(
                truth,
                leaves,
                0.1,
                range_queries,
                &mut rq_rng,
            )?);
            out.rq_04 = Some(metrics::range_query_mae_signed(
                truth,
                leaves,
                0.4,
                range_queries,
                &mut rq_rng,
            )?);
        }
        Estimate::Scalar { mean, variance } => {
            out.mean_err = Some(metrics::mean_error_scalar(truth, *mean));
            out.var_err = Some(metrics::variance_error_scalar(truth, *variance));
        }
    }
    Ok(out)
}

/// Runs `jobs` independent closures on the shared [`ldp_pool`] worker
/// pool, preserving job order in the output. `threads` caps how many pool
/// executors work on this batch concurrently (the submitting thread always
/// participates); results depend only on the job index, never on the cap
/// or the pool size. The first error aborts the batch, and a panicking job
/// cancels it without poisoning the pool for later calls.
pub fn parallel_jobs<T, F>(jobs: usize, threads: usize, f: F) -> Result<Vec<T>, ExperimentError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ExperimentError> + Sync,
{
    let results = ldp_pool::global()
        .run_capped(jobs, threads.max(1), f)
        .map_err(|_| ExperimentError("worker thread panicked".into()))?;
    results.into_iter().collect()
}

/// The results of a full (method × ε) grid: `metrics[m][e]` holds the
/// per-trial metrics for method `m` at `epsilons[e]`.
#[derive(Debug, Clone)]
pub struct GridResults {
    /// The methods, in input order.
    pub methods: Vec<Method>,
    /// The ε axis, in input order.
    pub epsilons: Vec<f64>,
    /// `metrics[m][e][t]` = metrics of trial `t`.
    pub metrics: Vec<Vec<Vec<TrialMetrics>>>,
}

impl GridResults {
    /// Builds a per-method series of (mean, std) for a selected metric,
    /// skipping methods where the metric is absent.
    #[must_use]
    pub fn series(
        &self,
        select: impl Fn(&TrialMetrics) -> Option<f64>,
    ) -> Vec<crate::report::Series> {
        let mut out = Vec::new();
        for (mi, method) in self.methods.iter().enumerate() {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let mut stds = Vec::new();
            for (ei, &eps) in self.epsilons.iter().enumerate() {
                let vals: Vec<f64> = self.metrics[mi][ei].iter().filter_map(&select).collect();
                if vals.is_empty() {
                    continue;
                }
                xs.push(eps);
                ys.push(ldp_numeric::stats::mean(&vals));
                stds.push(ldp_numeric::stats::std_dev(&vals));
            }
            if !xs.is_empty() {
                out.push(crate::report::Series {
                    label: method.name(),
                    x: xs,
                    y: ys,
                    std: stds,
                });
            }
        }
        out
    }
}

/// Runs every (method, ε, trial) combination over the thread pool.
pub fn run_grid(
    methods: &[Method],
    values: &[f64],
    truth: &Histogram,
    d: usize,
    config: &ExperimentConfig,
) -> Result<GridResults, ExperimentError> {
    let n_eps = config.epsilons.len();
    let jobs = methods.len() * n_eps * config.repeats;
    let flat = parallel_jobs(jobs, config.threads, |idx| {
        let trial = idx % config.repeats;
        let rest = idx / config.repeats;
        let ei = rest % n_eps;
        let mi = rest / n_eps;
        let seed = mix64(config.seed ^ mix64(idx as u64 + 1));
        evaluate_trial(
            methods[mi],
            values,
            truth,
            d,
            config.epsilons[ei],
            seed,
            config.range_queries,
        )
        .map(|m| (mi, ei, trial, m))
    })?;
    let mut metrics = vec![vec![Vec::with_capacity(config.repeats); n_eps]; methods.len()];
    for (mi, ei, _trial, m) in flat {
        metrics[mi][ei].push(m);
    }
    Ok(GridResults {
        methods: methods.to_vec(),
        epsilons: config.epsilons.clone(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> (Vec<f64>, Histogram) {
        let values: Vec<f64> = (0..4_000)
            .map(|i| ((i * 13) % 1000) as f64 / 1000.0)
            .collect();
        let truth = Histogram::from_samples(&values, 64).unwrap();
        (values, truth)
    }

    #[test]
    fn parallel_jobs_preserves_order() {
        let out = parallel_jobs(100, 8, |i| Ok(i * 2)).unwrap();
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn parallel_jobs_propagates_errors() {
        let r = parallel_jobs(10, 4, |i| {
            if i == 7 {
                Err(ExperimentError("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn parallel_jobs_zero_jobs() {
        let out: Vec<usize> = parallel_jobs(0, 4, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn trial_metrics_match_method_capabilities() {
        let (values, truth) = workload();
        let full = evaluate_trial(Method::SwEms, &values, &truth, 64, 1.0, 5, 50).unwrap();
        assert!(full.w1.is_some() && full.quantile_err.is_some());
        let signed = evaluate_trial(Method::Hh, &values, &truth, 64, 1.0, 5, 50).unwrap();
        assert!(signed.w1.is_none());
        assert!(signed.rq_01.is_some());
        let scalar = evaluate_trial(Method::Sr, &values, &truth, 64, 1.0, 5, 50).unwrap();
        assert!(scalar.mean_err.is_some());
        assert!(scalar.rq_01.is_none());
    }

    #[test]
    fn grid_runs_and_series_extraction_works() {
        let (values, truth) = workload();
        let config = ExperimentConfig {
            epsilons: vec![0.5, 2.0],
            repeats: 2,
            scale: 1.0,
            seed: 17,
            threads: 4,
            range_queries: 20,
            ..ExperimentConfig::default()
        };
        let grid = run_grid(&[Method::SwEms, Method::Sr], &values, &truth, 64, &config).unwrap();
        assert_eq!(grid.metrics.len(), 2);
        assert_eq!(grid.metrics[0].len(), 2);
        assert_eq!(grid.metrics[0][0].len(), 2);
        // W1 series exists only for SW-EMS.
        let w1 = grid.series(|m| m.w1);
        assert_eq!(w1.len(), 1);
        assert_eq!(w1[0].label, "SW-EMS");
        assert_eq!(w1[0].x.len(), 2);
        // Mean error exists for both.
        let me = grid.series(|m| m.mean_err);
        assert_eq!(me.len(), 2);
    }

    #[test]
    fn higher_epsilon_gives_lower_w1_for_sw_ems() {
        let (values, truth) = workload();
        let config = ExperimentConfig {
            epsilons: vec![0.25, 4.0],
            repeats: 3,
            scale: 1.0,
            seed: 23,
            threads: 4,
            range_queries: 20,
            ..ExperimentConfig::default()
        };
        let grid = run_grid(&[Method::SwEms], &values, &truth, 64, &config).unwrap();
        let w1 = grid.series(|m| m.w1);
        let s = &w1[0];
        assert!(s.y[1] < s.y[0], "W1 should shrink with epsilon: {:?}", s.y);
    }
}
