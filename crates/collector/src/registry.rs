//! Mechanism-by-name construction: the spec grammar and the constructor
//! table behind `--mechanism`.
//!
//! A spec is `<name>:<key>=<value>,…` — e.g. `sw-ems:eps=1,d=64` or
//! `pm:eps=0.5`. [`build_session`] parses one and instantiates the
//! matching [`Session`] with the family's input adapter and output
//! renderer. The name may also be one of the paper's method legends
//! (`SW-EMS`, `CFO-binning-16`, …), resolved through
//! [`ldp_experiments::Method::from_name`] — the same registry the
//! experiment grid dispatches through.
//!
//! The canonical id a session reports (and stamps into snapshot headers)
//! names the *mechanism* configuration, not the estimation choice:
//! `hh` and `hh-admm` share the id of their common randomizer, so a
//! window collected once can be finalized under either post-processing —
//! exactly the paper's separation of collection from server-side
//! estimation.

use crate::error::CollectorError;
use crate::session::{CollectorSession, Session};
use ldp_cfo::{AdaptiveOracle, BinningEstimator, Grr, Hrr, Olh, Oue};
use ldp_experiments::Method;
use ldp_hierarchy::{
    constrained_inference, hh_admm_histogram, AdmmConfig, HaarHrr, HhRaw, HierarchicalHistogram,
    RootPolicy,
};
use ldp_mean::{Hybrid, Pm, Sr};
use ldp_numeric::histogram::bucket_of;
use ldp_numeric::Histogram;
use ldp_sw::SwMechanism;
use std::collections::BTreeMap;
use std::fmt::Write;

/// The paper's branching factor default for hierarchy mechanisms.
const DEFAULT_BRANCHING: usize = 4;

/// Every native mechanism name the collector can run, with its required
/// parameters (for `--help` and error messages).
pub const MECHANISMS: &[(&str, &str)] = &[
    (
        "sw-ems",
        "eps, d — Square Wave, EMS reconstruction (the paper's estimator)",
    ),
    ("sw-em", "eps, d — Square Wave, plain EM reconstruction"),
    ("grr", "eps, d — generalized randomized response"),
    ("olh", "eps, d — optimized local hashing"),
    ("oue", "eps, d — optimized unary encoding"),
    ("hrr", "eps, d — Hadamard randomized response"),
    ("adaptive", "eps, d — GRR/OLH selected by variance"),
    (
        "cfo-binning",
        "eps, d, bins — binned frequency oracle + Norm-Sub",
    ),
    ("pm", "eps — piecewise mechanism (mean)"),
    ("sr", "eps — stochastic rounding (mean)"),
    ("hybrid", "eps — PM/SR hybrid (mean)"),
    (
        "hh",
        "eps, d[, branching] — hierarchical histogram, constrained inference",
    ),
    (
        "hh-admm",
        "eps, d[, branching] — hierarchical histogram, ADMM estimate",
    ),
    ("haar-hrr", "eps, d — Haar wavelet transform over HRR"),
];

/// One parsed `name:key=value,…` spec.
#[derive(Debug, Clone)]
struct Spec {
    name: String,
    params: BTreeMap<String, String>,
}

impl Spec {
    fn parse(spec: &str) -> Result<Self, CollectorError> {
        let (name, rest) = match spec.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (spec, None),
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(CollectorError::Spec("empty mechanism name".into()));
        }
        let mut params = BTreeMap::new();
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once('=').ok_or_else(|| {
                    CollectorError::Spec(format!("parameter {pair:?} is not key=value"))
                })?;
                if params
                    .insert(k.trim().to_string(), v.trim().to_string())
                    .is_some()
                {
                    return Err(CollectorError::Spec(format!("duplicate parameter {k:?}")));
                }
            }
        }
        Ok(Spec {
            name: name.to_string(),
            params,
        })
    }

    fn f64(&self, key: &str) -> Result<f64, CollectorError> {
        let raw = self
            .params
            .get(key)
            .ok_or_else(|| CollectorError::Spec(format!("{} requires {key}=<value>", self.name)))?;
        raw.parse()
            .map_err(|_| CollectorError::Spec(format!("cannot parse {key}={raw:?} as a number")))
    }

    fn usize(&self, key: &str) -> Result<usize, CollectorError> {
        let raw = self
            .params
            .get(key)
            .ok_or_else(|| CollectorError::Spec(format!("{} requires {key}=<value>", self.name)))?;
        raw.parse()
            .map_err(|_| CollectorError::Spec(format!("cannot parse {key}={raw:?} as an integer")))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, CollectorError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CollectorError::Spec(format!("cannot parse {key}={raw:?} as an integer"))
            }),
        }
    }

    /// Rejects parameters no constructor consumed — a typo like `epd=1`
    /// must fail loudly, not silently collect under defaults.
    fn check_known(&self, known: &[&str]) -> Result<(), CollectorError> {
        for key in self.params.keys() {
            if !known.contains(&key.as_str()) {
                return Err(CollectorError::Spec(format!(
                    "unknown parameter {key:?} for {} (accepted: {})",
                    self.name,
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Levenshtein distance, for "did you mean" suggestions on unknown
/// mechanism names. Inputs are short (mechanism names), so the O(n·m)
/// two-row dynamic program is plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest known spelling to `name` across native mechanism names and
/// the paper's method legends, if any is close enough to plausibly be a
/// typo (distance ≤ 2, compared case-insensitively).
fn nearest_name(name: &str) -> Option<String> {
    let wanted = name.to_ascii_lowercase();
    let mut candidates: Vec<String> = MECHANISMS.iter().map(|(n, _)| (*n).to_string()).collect();
    candidates.extend(Method::known_names());
    candidates
        .into_iter()
        .map(|c| (edit_distance(&wanted, &c.to_ascii_lowercase()), c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// Maps a paper method legend (via the experiment registry's
/// [`Method::from_name`]) onto the collector's native spec name, carrying
/// implied parameters along (`CFO-binning-16` implies `bins=16`).
fn resolve_alias(spec: &mut Spec) -> Result<(), CollectorError> {
    if MECHANISMS.iter().any(|(n, _)| *n == spec.name) {
        return Ok(());
    }
    let method = Method::from_name(&spec.name).ok_or_else(|| {
        let hint = match nearest_name(&spec.name) {
            Some(near) => format!(" — did you mean {near:?}?"),
            None => String::new(),
        };
        CollectorError::Spec(format!(
            "unknown mechanism {:?}{hint} (native names: {}; paper legends like \"SW-EMS\" also work)",
            spec.name,
            MECHANISMS
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;
    spec.name = match method {
        Method::SwEms => "sw-ems".into(),
        Method::SwEm => "sw-em".into(),
        Method::HhAdmm => "hh-admm".into(),
        Method::Hh => "hh".into(),
        Method::HaarHrr => "haar-hrr".into(),
        Method::Sr => "sr".into(),
        Method::Pm => "pm".into(),
        Method::CfoBinning { bins } => {
            spec.params
                .entry("bins".into())
                .or_insert_with(|| bins.to_string());
            "cfo-binning".into()
        }
    };
    Ok(())
}

fn render_histogram(h: &Histogram) -> Result<String, CollectorError> {
    let mut out = String::new();
    for p in h.probs() {
        let _ = writeln!(out, "{p}");
    }
    Ok(out)
}

fn render_frequencies(f: &[f64]) -> Result<String, CollectorError> {
    let mut out = String::new();
    for p in f {
        let _ = writeln!(out, "{p}");
    }
    Ok(out)
}

fn render_scalar(v: &f64) -> Result<String, CollectorError> {
    Ok(format!("{v}\n"))
}

/// Canonical ids, one format per parameter arity; fixed key order makes
/// equal configurations produce byte-equal ids (which snapshot headers
/// compare).
fn id_eps(name: &str, eps: f64) -> String {
    format!("{name}:eps={eps}")
}

fn id_eps_d(name: &str, eps: f64, d: usize) -> String {
    format!("{name}:eps={eps},d={d}")
}

/// Builds a ready-to-run collection session from a mechanism spec.
pub fn build_session(spec: &str) -> Result<Box<dyn CollectorSession>, CollectorError> {
    let mut spec = Spec::parse(spec)?;
    resolve_alias(&mut spec)?;
    let name = spec.name.clone();
    Ok(match name.as_str() {
        "sw-ems" | "sw-em" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech = if name == "sw-ems" {
                SwMechanism::ems(eps, d)
            } else {
                SwMechanism::em(eps, d)
            }
            .map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(|v| v),
                Box::new(|h: &Histogram| render_histogram(h)),
            ))
        }
        "grr" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech = Grr::new(d, eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(move |v| bucket_of(v, d)),
                Box::new(|f: &Vec<f64>| render_frequencies(f)),
            ))
        }
        "olh" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech = Olh::new(d, eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(move |v| bucket_of(v, d)),
                Box::new(|f: &Vec<f64>| render_frequencies(f)),
            ))
        }
        "oue" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech = Oue::new(d, eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(move |v| bucket_of(v, d)),
                Box::new(|f: &Vec<f64>| render_frequencies(f)),
            ))
        }
        "hrr" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech = Hrr::new(d, eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(move |v| bucket_of(v, d)),
                Box::new(|f: &Vec<f64>| render_frequencies(f)),
            ))
        }
        "adaptive" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech =
                AdaptiveOracle::new(d, eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(move |v| bucket_of(v, d)),
                Box::new(|f: &Vec<f64>| render_frequencies(f)),
            ))
        }
        "cfo-binning" => {
            spec.check_known(&["eps", "d", "bins"])?;
            let (eps, d, bins) = (spec.f64("eps")?, spec.usize("d")?, spec.usize("bins")?);
            let mech = BinningEstimator::new(bins, d, eps)
                .map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                format!("cfo-binning:eps={eps},d={d},bins={bins}"),
                Box::new(|v| v),
                Box::new(|h: &Histogram| render_histogram(h)),
            ))
        }
        "pm" => {
            spec.check_known(&["eps"])?;
            let eps = spec.f64("eps")?;
            let mech = Pm::new(eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps(&name, eps),
                Box::new(ldp_mean::to_signed),
                Box::new(|m: &f64| render_scalar(m)),
            ))
        }
        "sr" => {
            spec.check_known(&["eps"])?;
            let eps = spec.f64("eps")?;
            let mech = Sr::new(eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps(&name, eps),
                Box::new(ldp_mean::to_signed),
                Box::new(|m: &f64| render_scalar(m)),
            ))
        }
        "hybrid" => {
            spec.check_known(&["eps"])?;
            let eps = spec.f64("eps")?;
            let mech = Hybrid::new(eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps(&name, eps),
                Box::new(ldp_mean::to_signed),
                Box::new(|m: &f64| render_scalar(m)),
            ))
        }
        "hh" | "hh-admm" => {
            spec.check_known(&["eps", "d", "branching"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let branching = spec.usize_or("branching", DEFAULT_BRANCHING)?;
            let mech = HierarchicalHistogram::new(branching, d, eps)
                .map_err(|e| CollectorError::Spec(e.to_string()))?;
            // Both estimation choices share the randomizer, the wire
            // format, and the snapshot id: a window collected once can be
            // finalized under either post-processing.
            let id = format!("hh:eps={eps},d={d},branching={branching}");
            let render: crate::session::OutputRenderer<HhRaw> = if name == "hh-admm" {
                Box::new(|raw: &HhRaw| {
                    let h = hh_admm_histogram(raw.shape(), raw, AdmmConfig::default())
                        .map_err(|e| CollectorError::Io(e.to_string()))?;
                    render_histogram(&h)
                })
            } else {
                Box::new(|raw: &HhRaw| {
                    let consistent = constrained_inference(
                        raw.shape(),
                        &raw.tree,
                        &raw.level_variances,
                        RootPolicy::Fixed(1.0),
                    )
                    .map_err(|e| CollectorError::Io(e.to_string()))?;
                    render_frequencies(consistent.leaves())
                })
            };
            Box::new(Session::new(
                mech,
                id,
                Box::new(move |v| bucket_of(v, d)),
                render,
            ))
        }
        "haar-hrr" => {
            spec.check_known(&["eps", "d"])?;
            let (eps, d) = (spec.f64("eps")?, spec.usize("d")?);
            let mech = HaarHrr::new(d, eps).map_err(|e| CollectorError::Spec(e.to_string()))?;
            Box::new(Session::new(
                mech,
                id_eps_d(&name, eps, d),
                Box::new(move |v| bucket_of(v, d)),
                Box::new(|f: &Vec<f64>| render_frequencies(f)),
            ))
        }
        other => return Err(CollectorError::Spec(format!("unknown mechanism {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_mechanism_builds_and_round_trips() {
        for spec in [
            "sw-ems:eps=1,d=32",
            "sw-em:eps=1,d=32",
            "grr:eps=1,d=8",
            "olh:eps=1,d=8",
            "oue:eps=1,d=8",
            "hrr:eps=1,d=8",
            "adaptive:eps=1,d=8",
            "adaptive:eps=1,d=4096",
            "cfo-binning:eps=1,d=64,bins=16",
            "pm:eps=1",
            "sr:eps=1",
            "hybrid:eps=2",
            "hh:eps=1,d=64",
            "hh-admm:eps=1,d=64",
            "haar-hrr:eps=1,d=64",
        ] {
            let mut session = build_session(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let reports = session.gen_reports(400, 7).unwrap();
            assert_eq!(session.ingest_text(&reports).unwrap(), 400, "{spec}");
            assert_eq!(session.count(), 400);
            let estimate = session.finalize_text().unwrap();
            assert!(!estimate.is_empty(), "{spec}");
            // Snapshot -> fresh session -> identical estimate.
            let snap = session.snapshot_text();
            let mut fresh = build_session(spec).unwrap();
            fresh.restore(&snap).unwrap();
            assert_eq!(fresh.count(), 400);
            assert_eq!(fresh.finalize_text().unwrap(), estimate, "{spec}");
        }
    }

    #[test]
    fn hh_and_hh_admm_share_a_window() {
        let mut hh = build_session("hh:eps=1,d=16").unwrap();
        let reports = hh.gen_reports(2_000, 9).unwrap();
        hh.ingest_text(&reports).unwrap();
        let snap = hh.snapshot_text();
        // The same collected window finalizes under ADMM post-processing.
        let mut admm = build_session("hh-admm:eps=1,d=16").unwrap();
        admm.restore(&snap).unwrap();
        let text = admm.finalize_text().unwrap();
        let probs: Vec<f64> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(probs.len(), 16);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paper_method_legends_resolve_through_the_experiment_registry() {
        for (legend, native) in [
            ("SW-EMS:eps=1,d=32", "sw-ems:eps=1,d=32"),
            (
                "CFO-binning-16:eps=1,d=64",
                "cfo-binning:eps=1,d=64,bins=16",
            ),
            ("HH:eps=1,d=64", "hh:eps=1,d=64"),
            ("PM:eps=1", "pm:eps=1"),
        ] {
            let a = build_session(legend).unwrap_or_else(|e| panic!("{legend}: {e}"));
            let b = build_session(native).unwrap();
            assert_eq!(a.mechanism_id(), b.mechanism_id(), "{legend}");
            assert_eq!(a.fingerprint(), b.fingerprint(), "{legend}");
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(build_session("").is_err());
        assert!(build_session("warp-drive:eps=1").is_err());
        assert!(build_session("sw-ems").is_err(), "missing params");
        assert!(build_session("sw-ems:eps=1").is_err(), "missing d");
        assert!(build_session("sw-ems:eps=0,d=64").is_err(), "bad eps");
        assert!(
            build_session("sw-ems:eps=1,d=64,flux=3").is_err(),
            "typo key"
        );
        assert!(build_session("sw-ems:eps=1,eps=2,d=4").is_err(), "dup key");
        assert!(build_session("pm:eps=1,d=64").is_err(), "foreign key");
        assert!(build_session("grr:eps=x,d=4").is_err());
    }

    fn build_err(spec: &str) -> String {
        match build_session(spec) {
            Ok(_) => panic!("{spec} unexpectedly built"),
            Err(e) => e.to_string(),
        }
    }

    #[test]
    fn unknown_mechanism_errors_suggest_near_matches() {
        let err = build_err("sw-emss:eps=1,d=32");
        assert!(err.contains("did you mean"), "{err}");
        assert!(err.contains("sw-ems"), "{err}");
        let err = build_err("ohl:eps=1,d=8");
        assert!(err.contains("did you mean \"olh\""), "{err}");
        // Nothing close: no misleading suggestion, just the roster.
        let err = build_err("warp-drive:eps=1");
        assert!(!err.contains("did you mean"), "{err}");
        assert!(err.contains("native names"), "{err}");
    }

    #[test]
    fn edit_distance_is_symmetric_and_grounded() {
        assert_eq!(edit_distance("olh", "olh"), 0);
        assert_eq!(edit_distance("olh", "ohl"), 2);
        assert_eq!(edit_distance("sw-ems", "sw-em"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
    }

    #[test]
    fn canonical_ids_are_stable_across_equivalent_spellings() {
        let a = build_session("sw-ems:eps=1,d=64").unwrap();
        let b = build_session("sw-ems: d=64 , eps=1").unwrap();
        assert_eq!(a.mechanism_id(), b.mechanism_id());
        assert_eq!(a.mechanism_id(), "sw-ems:eps=1,d=64");
    }
}
