//! Shared fixtures for the criterion benchmarks and the `repro` binary.
//!
//! Benchmarks deliberately run at reduced scale (small n, small d) so
//! `cargo bench` terminates in minutes; the `repro` binary is the tool for
//! paper-scale reproduction runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ldp_datasets::{Dataset, DatasetKind, DatasetSpec};
use ldp_numeric::Histogram;

/// A small deterministic workload for micro-benchmarks.
#[must_use]
pub fn bench_dataset(kind: DatasetKind, n: usize) -> Dataset {
    DatasetSpec { kind, n, seed: 99 }.generate()
}

/// The ground-truth histogram of a bench workload.
#[must_use]
pub fn bench_truth(dataset: &Dataset, d: usize) -> Histogram {
    dataset.histogram(d).expect("non-empty bench dataset")
}

/// Bench-scale defaults: users per trial and histogram granularity.
pub const BENCH_N: usize = 20_000;
/// Bench-scale histogram granularity (power of 4 so HH-ADMM runs too).
pub const BENCH_D: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = bench_dataset(DatasetKind::Beta, 1000);
        let b = bench_dataset(DatasetKind::Beta, 1000);
        assert_eq!(a.values, b.values);
        let t = bench_truth(&a, 64);
        assert_eq!(t.len(), 64);
    }
}
