//! Wire-format round trips: serializing a report stream, deserializing it,
//! and aggregating must produce the bit-identical estimate — reports can
//! cross process boundaries (device → collector → replay log) losslessly.
//!
//! The report structs also carry `serde` derives (via the vendored stub,
//! swap-in compatible with the real `serde`); the encoding exercised here
//! is `ldp-core`'s dependency-free line format.

use sw_ldp::cfo::select::AdaptiveReport;
use sw_ldp::cfo::{Grr, Hrr, Olh, Oue};
use sw_ldp::core_api::{decode_lines, encode_lines, Client, Mechanism, WireReport};
use sw_ldp::hierarchy::{HaarHrr, HaarReport, HhReport, HierarchicalHistogram};
use sw_ldp::mean::{Hybrid, HybridReport, Pm, Sr};
use sw_ldp::numeric::SplitMix64;
use sw_ldp::sw::mechanism::SwMechanism;

/// Randomizes a stream, ships it through the wire format, and asserts the
/// replayed stream finalizes to the bit-identical estimate.
fn round_trip<M, F>(label: &str, mechanism: M, inputs: &[M::Input], canon: F, seed: u64)
where
    M: Mechanism,
    M::Input: Sized,
    M::Report: WireReport + PartialEq + std::fmt::Debug,
    F: Fn(&M::Output) -> Vec<f64>,
{
    let client = Client::new(&mechanism);
    let mut rng = SplitMix64::new(seed);
    let reports: Vec<M::Report> = inputs
        .iter()
        .map(|v| client.randomize(v, &mut rng).unwrap())
        .collect();

    let text = encode_lines(&reports);
    let replayed: Vec<M::Report> = decode_lines(&text).unwrap();
    assert_eq!(replayed, reports, "{label}: reports must survive the wire");

    let original = canon(&mechanism.aggregate(&reports).unwrap());
    let decoded = canon(&mechanism.aggregate(&replayed).unwrap());
    assert_eq!(original.len(), decoded.len());
    for (i, (a, b)) in original.iter().zip(&decoded).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: estimate entry {i} changed across the wire"
        );
    }
}

fn unit_values(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i % 173) as f64 / 173.0).collect()
}

fn signed_values(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 29) % 201) as f64 / 100.0 - 1.0)
        .collect()
}

fn categorical_values(n: usize, d: usize) -> Vec<usize> {
    (0..n).map(|i| (i * 11) % d).collect()
}

#[test]
fn sw_reports_round_trip() {
    round_trip(
        "SW-EMS",
        SwMechanism::ems(1.0, 24).unwrap(),
        &unit_values(2_000),
        |h| h.probs().to_vec(),
        201,
    );
}

#[test]
fn cfo_reports_round_trip() {
    round_trip(
        "GRR",
        Grr::new(16, 1.0).unwrap(),
        &categorical_values(2_000, 16),
        Clone::clone,
        202,
    );
    round_trip(
        "OLH",
        Olh::new(32, 1.0).unwrap(),
        &categorical_values(2_000, 32),
        Clone::clone,
        203,
    );
    round_trip(
        "OUE",
        Oue::new(70, 1.0).unwrap(),
        &categorical_values(2_000, 70),
        Clone::clone,
        204,
    );
    round_trip(
        "Hadamard-RR",
        Hrr::new(20, 1.0).unwrap(),
        &categorical_values(2_000, 20),
        Clone::clone,
        205,
    );
}

#[test]
fn mean_reports_round_trip() {
    round_trip(
        "PM",
        Pm::new(1.0).unwrap(),
        &signed_values(2_000),
        |m| vec![*m],
        206,
    );
    round_trip(
        "SR",
        Sr::new(1.0).unwrap(),
        &signed_values(2_000),
        |m| vec![*m],
        207,
    );
    round_trip(
        "Hybrid",
        Hybrid::new(2.0).unwrap(),
        &signed_values(2_000),
        |m| vec![*m],
        208,
    );
}

#[test]
fn hierarchy_reports_round_trip() {
    round_trip(
        "HaarHRR",
        HaarHrr::new(32, 1.0).unwrap(),
        &categorical_values(2_000, 32),
        Clone::clone,
        209,
    );
    round_trip(
        "HH",
        HierarchicalHistogram::new(4, 64, 1.0).unwrap(),
        &categorical_values(2_000, 64),
        |raw| raw.tree.flatten(),
        210,
    );
}

/// Tampered or truncated lines must be rejected, never silently absorbed.
#[test]
fn malformed_wire_lines_are_rejected() {
    assert!(decode_lines::<f64>("0.5\nnot-a-float\n0.25").is_err());
    assert!(decode_lines::<HhReport>("2 g 3\n2 q 3").is_err());
    assert!(
        decode_lines::<HaarReport>("1 3 0").is_err(),
        "bit must be ±1"
    );
    assert!(decode_lines::<AdaptiveReport>("o 12").is_err());
    assert!(decode_lines::<HybridReport>("p one").is_err());
}

/// Edge cases pinned while writing `docs/WIRE_FORMAT.md` — the spec
/// promises exactly these behaviors.
#[test]
fn wire_spec_edge_cases() {
    // An empty stream is a valid (empty) stream, not an error.
    assert_eq!(decode_lines::<f64>("").unwrap(), Vec::<f64>::new());
    assert_eq!(encode_lines::<f64>(&[]), "");
    // Blank lines and surrounding whitespace are insignificant…
    let padded = "  0.5  \n\n\t\n0.25\n";
    assert_eq!(decode_lines::<f64>(padded).unwrap(), vec![0.5, 0.25]);
    // …and CRLF line endings decode like LF (str::lines strips \r via
    // the trim the decoder applies).
    assert_eq!(
        decode_lines::<f64>("0.5\r\n0.25\r\n").unwrap(),
        vec![0.5, 0.25]
    );
    // Special f64 values survive the shortest-round-trip rendering.
    for v in [-0.0f64, f64::MIN_POSITIVE, 5e-324, 1e308, 1.0 / 3.0] {
        let text = encode_lines(&[v]);
        let back: Vec<f64> = decode_lines(&text).unwrap();
        assert_eq!(back[0].to_bits(), v.to_bits(), "{v:e}");
    }
    // Duplicate lines are preserved, not deduplicated: the wire format
    // is a stream, and at-least-once vs exactly-once is the transport's
    // contract (see docs/OPERATIONS.md).
    let dup = "0.5\n0.5\n";
    assert_eq!(decode_lines::<f64>(dup).unwrap(), vec![0.5, 0.5]);
}

/// The same stream replayed through a second encode→decode generation is
/// byte-stable: the wire format is a fixed point after one round trip.
#[test]
fn wire_encoding_is_a_fixed_point() {
    let olh = Olh::new(16, 1.0).unwrap();
    let client = Client::new(&olh);
    let mut rng = SplitMix64::new(404);
    let reports: Vec<_> = categorical_values(200, 16)
        .iter()
        .map(|v| client.randomize(v, &mut rng).unwrap())
        .collect();
    let first = encode_lines(&reports);
    let second = encode_lines(&decode_lines::<sw_ldp::cfo::olh::OlhReport>(&first).unwrap());
    assert_eq!(first, second);
}
