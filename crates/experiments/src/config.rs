//! Experiment configuration and scaling knobs.

use ldp_datasets::DatasetKind;

/// Configuration shared by all figure runners.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The privacy budgets swept on the x-axis (paper: 0.5 … 2.5).
    pub epsilons: Vec<f64>,
    /// Trials per (method, dataset, ε) point (paper: 100).
    pub repeats: usize,
    /// Fraction of each dataset's paper-scale population to simulate.
    pub scale: f64,
    /// Master seed; every trial derives its own stream from it.
    pub seed: u64,
    /// Concurrency cap for the trial loop on the shared worker pool.
    pub threads: usize,
    /// Random range queries per trial for the range-query MAE.
    pub range_queries: usize,
    /// Which datasets to evaluate (paper: all four).
    pub datasets: Vec<DatasetKind>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            epsilons: vec![0.5, 1.0, 1.5, 2.0, 2.5],
            repeats: 5,
            scale: 0.05,
            seed: 0xC0FFEE,
            // Size the trial loop like the pool it runs on: one knob
            // (`LDP_POOL_THREADS` / host parallelism) governs both, instead
            // of a second independent `available_parallelism` call here.
            // `configured_threads` answers without spawning the pool, so
            // building a config stays side-effect-free.
            threads: ldp_pool::configured_threads(),
            range_queries: 100,
            datasets: DatasetKind::all().to_vec(),
        }
    }
}

impl ExperimentConfig {
    /// The paper's full-scale setup (100 repeats, full populations). Takes
    /// hours of CPU; use for final reproduction runs only.
    #[must_use]
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            repeats: 100,
            scale: 1.0,
            ..ExperimentConfig::default()
        }
    }

    /// A configuration small enough for CI smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        ExperimentConfig {
            epsilons: vec![1.0],
            repeats: 1,
            scale: 0.01,
            seed: 7,
            threads: 2,
            range_queries: 50,
            datasets: vec![DatasetKind::Beta],
        }
    }

    /// Caps `threads` at 1 for fully deterministic sequential execution
    /// (results are seed-deterministic either way; sequencing only affects
    /// scheduling).
    #[must_use]
    pub fn sequential(mut self) -> Self {
        self.threads = 1;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_axes() {
        let c = ExperimentConfig::default();
        assert_eq!(c.epsilons, vec![0.5, 1.0, 1.5, 2.0, 2.5]);
        assert!(c.repeats >= 1);
        assert!(c.threads >= 1);
        // The default thread budget is the shared pool's size, so one knob
        // governs both the pool and the trial loop.
        assert_eq!(c.threads, ldp_pool::configured_threads());
    }

    #[test]
    fn paper_scale_is_full() {
        let c = ExperimentConfig::paper_scale();
        assert_eq!(c.repeats, 100);
        assert!((c.scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoke_is_tiny_and_sequential_caps_threads() {
        let c = ExperimentConfig::smoke().sequential();
        assert_eq!(c.threads, 1);
        assert_eq!(c.repeats, 1);
    }
}
