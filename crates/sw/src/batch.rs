//! Batched, multi-threaded client-side randomization.
//!
//! A collector ingesting millions of reports should not perturb them one at
//! a time on one core. The batch API shards the input across
//! `std::thread::scope` workers — each with an independent, deterministic
//! [`SplitMix64`] stream derived from a base seed and its shard index —
//! and either materializes the perturbed reports in input order
//! ([`SwPipeline::randomize_batch`]) or fuses perturbation with histogram
//! aggregation, merging one [`ShardAggregator`] per worker at the end
//! ([`SwPipeline::aggregate_batch`]). Given the same `(seed, workers)` pair
//! the output is bit-reproducible; changing `workers` changes which stream
//! perturbs which value, which is statistically irrelevant.

use crate::aggregator::ShardAggregator;
use crate::error::SwError;
use crate::pipeline::{Reconstruction, SwPipeline};
use ldp_numeric::rng::mix64;
use ldp_numeric::{Histogram, SplitMix64};

/// Splits `len` items into at most `workers` contiguous chunks of
/// near-equal size (at least one item each).
fn chunk_len(len: usize, workers: usize) -> usize {
    len.div_ceil(workers).max(1)
}

/// Perturbed reports are bulk-ingested in blocks of this size, bounding
/// each aggregation worker's buffer regardless of shard length.
const INGEST_BLOCK: usize = 8 * 1024;

/// The per-shard RNG: decorrelated from the base seed and shard index.
fn shard_rng(seed: u64, shard: u64) -> SplitMix64 {
    SplitMix64::new(mix64(seed ^ mix64(shard.wrapping_add(1))))
}

fn check_workers(workers: usize) -> Result<(), SwError> {
    if workers == 0 {
        return Err(SwError::InvalidParameter(
            "worker count must be positive".into(),
        ));
    }
    Ok(())
}

impl SwPipeline {
    /// Client side, batched: perturbs every value in `values` across
    /// `workers` threads, returning the reports in input order.
    ///
    /// Deterministic in `(seed, workers)`. Fails (without partial output)
    /// if any value lies outside `[0, 1]`.
    pub fn randomize_batch(
        &self,
        values: &[f64],
        workers: usize,
        seed: u64,
    ) -> Result<Vec<f64>, SwError> {
        check_workers(workers)?;
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let chunk = chunk_len(values.len(), workers);
        let mut out = vec![0.0; values.len()];
        let results: Vec<Result<(), SwError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = values
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .enumerate()
                .map(|(shard, (vals, slot))| {
                    scope.spawn(move || {
                        let mut rng = shard_rng(seed, shard as u64);
                        for (v, s) in vals.iter().zip(slot.iter_mut()) {
                            *s = self.wave().randomize(*v, &mut rng)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(SwError::InvalidParameter(
                        "randomization worker panicked".into(),
                    )))
                })
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(out)
    }

    /// Server + client fused, batched: perturbs every value and histograms
    /// the reports, without materializing the full report vector. Each
    /// worker fills its own [`ShardAggregator`] (bulk-ingesting via
    /// [`ShardAggregator::push_slice`]); the shards are merged in order.
    ///
    /// The merged aggregator equals what [`Self::randomize_batch`] followed
    /// by sequential pushes would produce for the same `(seed, workers)`.
    pub fn aggregate_batch(
        &self,
        values: &[f64],
        workers: usize,
        seed: u64,
    ) -> Result<ShardAggregator, SwError> {
        check_workers(workers)?;
        let chunk = chunk_len(values.len(), workers);
        let shards: Vec<Result<ShardAggregator, SwError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = values
                .chunks(chunk)
                .enumerate()
                .map(|(shard, vals)| {
                    scope.spawn(move || {
                        let mut rng = shard_rng(seed, shard as u64);
                        let mut agg = ShardAggregator::for_pipeline(self);
                        // Perturb into a fixed-size buffer and bulk-ingest
                        // per block: peak memory stays O(d̃ + block) per
                        // worker no matter how many reports flow through.
                        let mut reports = Vec::with_capacity(INGEST_BLOCK.min(vals.len()));
                        for block in vals.chunks(INGEST_BLOCK) {
                            reports.clear();
                            for &v in block {
                                reports.push(self.wave().randomize(v, &mut rng)?);
                            }
                            agg.push_slice(&reports)?;
                        }
                        Ok(agg)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(Err(SwError::InvalidParameter(
                        "aggregation worker panicked".into(),
                    )))
                })
                .collect()
        });
        let mut merged = ShardAggregator::for_pipeline(self);
        for shard in shards {
            merged.merge(&shard?)?;
        }
        Ok(merged)
    }

    /// Full batched pipeline: randomize + aggregate across `workers`
    /// threads, then reconstruct through the structured operator.
    pub fn estimate_batch(
        &self,
        values: &[f64],
        method: &Reconstruction,
        workers: usize,
        seed: u64,
    ) -> Result<Histogram, SwError> {
        if values.is_empty() {
            return Err(SwError::Reconstruction(
                "need at least one user report".into(),
            ));
        }
        let agg = self.aggregate_batch(values, workers, seed)?;
        Ok(self.reconstruct(&agg.to_counts(), method)?.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> SwPipeline {
        SwPipeline::new(1.0, 32).unwrap()
    }

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 199) as f64 / 199.0).collect()
    }

    #[test]
    fn batch_is_deterministic_in_seed_and_workers() {
        let p = pipeline();
        let vals = values(3_000);
        let a = p.randomize_batch(&vals, 4, 99).unwrap();
        let b = p.randomize_batch(&vals, 4, 99).unwrap();
        assert_eq!(a, b);
        let c = p.randomize_batch(&vals, 4, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn batch_reports_stay_in_output_domain() {
        let p = pipeline();
        let vals = values(2_000);
        let (lo, hi) = (p.wave().output_lo(), p.wave().output_hi());
        for workers in [1, 2, 3, 8] {
            let reports = p.randomize_batch(&vals, workers, 7).unwrap();
            assert_eq!(reports.len(), vals.len());
            assert!(reports.iter().all(|&r| r >= lo && r <= hi));
        }
    }

    #[test]
    fn aggregate_batch_matches_randomize_then_push() {
        let p = pipeline();
        let vals = values(5_000);
        for workers in [1, 3, 7] {
            let reports = p.randomize_batch(&vals, workers, 42).unwrap();
            let mut direct = ShardAggregator::for_pipeline(&p);
            direct.push_slice(&reports).unwrap();
            let fused = p.aggregate_batch(&vals, workers, 42).unwrap();
            assert_eq!(fused, direct);
        }
    }

    #[test]
    fn batch_validates_inputs() {
        let p = pipeline();
        assert!(p.randomize_batch(&[0.5], 0, 1).is_err());
        assert!(p.aggregate_batch(&[0.5], 0, 1).is_err());
        assert!(p.randomize_batch(&[1.5], 2, 1).is_err());
        assert!(p.aggregate_batch(&[f64::NAN], 2, 1).is_err());
        assert!(p.randomize_batch(&[], 4, 1).unwrap().is_empty());
        assert_eq!(p.aggregate_batch(&[], 4, 1).unwrap().total(), 0);
        assert!(p.estimate_batch(&[], &Reconstruction::Ems, 4, 1).is_err());
    }

    #[test]
    fn more_workers_than_values_is_fine() {
        let p = pipeline();
        let reports = p.randomize_batch(&[0.25, 0.75], 16, 5).unwrap();
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn estimate_batch_recovers_concentrated_mass() {
        let p = pipeline();
        let vals: Vec<f64> = (0..40_000)
            .map(|i| 0.4 + 0.2 * ((i % 331) as f64 / 331.0))
            .collect();
        let h = p
            .estimate_batch(&vals, &Reconstruction::Ems, 4, 11)
            .unwrap();
        let mass = h.range_mass(0.3, 0.7);
        assert!(mass > 0.8, "mass {mass}");
    }
}
