//! Snapshot-format compatibility: PR 8's overload machinery must not
//! change a single byte of the snapshot container.
//!
//! The fixtures under `tests/fixtures/` were written by the pre-PR-8
//! binary (`gen --mechanism grr:eps=1,d=16 --n 120 --seed 9` piped
//! through `ingest`, with and without sequenced-session cursors). A
//! current session must restore them, re-emit them byte-identically,
//! and — rebuilt from scratch over the same reports — write those exact
//! bytes again. `inspect` must print nothing new for them either.

use ldp_collector::build_session;
use std::process::Command;

const SPEC: &str = "grr:eps=1,d=16";
const GRR_FIXTURE: &str = include_str!("fixtures/pre_pr8_grr.snap");
const SESSIONS_FIXTURE: &str = include_str!("fixtures/pre_pr8_sessions.snap");

#[test]
fn restoring_a_pre_pr8_snapshot_round_trips_byte_identically() {
    let mut session = build_session(SPEC).unwrap();
    session.restore(GRR_FIXTURE).unwrap();
    assert_eq!(session.count(), 120);
    assert_eq!(
        session.snapshot_text(),
        GRR_FIXTURE,
        "restore -> snapshot must reproduce the pre-PR-8 bytes"
    );

    let mut session = build_session(SPEC).unwrap();
    session.restore(SESSIONS_FIXTURE).unwrap();
    assert_eq!(session.count(), 120);
    assert_eq!(
        session.snapshot_text(),
        SESSIONS_FIXTURE,
        "sequenced-session cursors must round-trip untouched"
    );
}

#[test]
fn a_freshly_ingested_window_still_writes_the_pre_pr8_bytes() {
    let generator = build_session(SPEC).unwrap();
    let log = generator.gen_reports(120, 9).unwrap();

    let mut session = build_session(SPEC).unwrap();
    session.ingest_text(&log).unwrap();
    assert_eq!(
        session.snapshot_text(),
        GRR_FIXTURE,
        "a fresh ingest must emit the pre-PR-8 snapshot byte for byte"
    );

    // The sessions fixture is the same window ingested as two sequenced
    // sessions: fix-a took three frames, fix-b two.
    session.set_session_cursor("fix-a", 3);
    session.set_session_cursor("fix-b", 2);
    assert_eq!(
        session.snapshot_text(),
        SESSIONS_FIXTURE,
        "cursor bookkeeping must not disturb the container format"
    );
}

#[test]
fn inspect_prints_nothing_new_for_a_pre_pr8_snapshot() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_pr8_sessions.snap"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_ldp-collector"))
        .args(["inspect", fixture])
        .output()
        .expect("spawn ldp-collector");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let keys: Vec<&str> = stdout
        .lines()
        .skip(1) // the "<path>:" heading
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert_eq!(
        keys,
        [
            "version",
            "mechanism",
            "fingerprint",
            "reports",
            "body",
            "sessions",
            "fix-a",
            "fix-b",
            "checksum",
        ],
        "inspect grew or reordered fields:\n{stdout}"
    );
}
