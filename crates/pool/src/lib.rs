//! A shared, work-stealing worker pool for the whole workspace.
//!
//! Before this crate existed, every parallel entry point —
//! `SwPipeline::randomize_batch`, the experiment grid's `parallel_jobs`,
//! and (sequentially) the bootstrap — paid for its own `std::thread::scope`
//! spawn/join round trip per call. Amortizing that setup across millions of
//! reports is exactly what makes LDP aggregation practical at population
//! scale, so the pool is **process-global and lazily initialized**
//! ([`global`]): the first parallel call spawns the workers, every later
//! call reuses them.
//!
//! # Execution model
//!
//! Work is submitted as a *batch* of indexed jobs ([`Pool::run`] /
//! [`Pool::run_capped`]) or through the structured [`Pool::scope`] /
//! [`Pool::join`] APIs. Batches are registered in a shared injector list;
//! idle workers scan it round-robin and **steal** jobs from whichever batch
//! has work, so concurrent batches (e.g. a grid trial whose method calls
//! `randomize_batch`) share the same workers instead of oversubscribing the
//! host. The submitting thread always participates in its own batch, which
//! makes the design deadlock-free under arbitrary nesting: a batch can
//! always be finished by its caller alone, workers are an acceleration.
//!
//! # Long-lived services
//!
//! The batch model deliberately excludes threads that live for the
//! duration of a connection or a serve loop. Those go through
//! [`service_scope`] (structured, named, panic-contained service threads)
//! and talk over [`chan::bounded`] channels, whose blocking `push` is the
//! backpressure edge of the collector's concurrent ingest path.
//!
//! # Determinism
//!
//! Jobs are identified by their **index in the batch**, never by the worker
//! that happens to execute them. Callers derive per-job state (RNG streams,
//! shard ranges) from that index, so results are bit-identical regardless
//! of how many workers the pool has — the property the batch randomizer,
//! `parallel_jobs`, and the bootstrap all rely on and that the integration
//! suite pins across `LDP_POOL_THREADS ∈ {1, 2, 7}`.
//!
//! # Sizing
//!
//! [`global`] sizes the pool from the `LDP_POOL_THREADS` environment
//! variable when set to a positive integer, else from
//! `std::thread::available_parallelism()`. A pool of size `t` keeps `t − 1`
//! background workers: the caller is the `t`-th executor, so size 1 means
//! strictly inline execution with zero thread traffic.
//!
//! # Panics
//!
//! A panicking job is caught on the worker, the rest of its batch is
//! cancelled, and the submitting call returns [`PoolError::JobPanicked`].
//! Workers and the pool survive — a panic never poisons the global pool
//! for subsequent calls.
//!
//! # Reading the unsafe internals
//!
//! This crate holds one of the workspace's two pockets of `unsafe` code —
//! the other being the runtime-dispatched AVX2 intrinsic kernels in
//! `ldp_numeric::kernels`. Here it is the scoped-lifetime
//! erasure that lets borrowed closures cross worker threads, documented
//! as a `SAFETY:` comment at the single `unsafe` block it lives in, in
//! [`Scope::spawn`]. The supporting invariants are written on the
//! *private* items that uphold them — `Batch` and the erased `Job` type —
//! so they don't appear in the public docs. To audit them, build with
//!
//! ```sh
//! cargo doc -p ldp-pool --document-private-items
//! ```
//!
//! which renders the safety reasoning alongside the code it governs.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod chan;
mod service;

pub use service::{service_scope, ServiceScope};

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Environment variable overriding the global pool's thread count.
pub const THREADS_ENV: &str = "LDP_POOL_THREADS";

/// Errors surfaced by pool submission APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// At least one job in the batch panicked; the batch was cancelled.
    JobPanicked,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobPanicked => write!(f, "a pool job panicked; the batch was cancelled"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A lifetime-erased unit of work. Only ever constructed by
/// [`Scope::spawn`], whose safety argument covers the erasure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One submitted batch of jobs.
struct Batch {
    /// Jobs not yet claimed by an executor.
    queue: Mutex<VecDeque<Job>>,
    /// Jobs enqueued but not yet finished (queued + in flight).
    pending: AtomicUsize,
    /// Executors (workers + the caller) currently draining this batch.
    /// Starts at 1: the submitting thread's slot is pre-reserved.
    executors: AtomicUsize,
    /// Maximum concurrent executors, including the caller's reserved slot.
    cap: usize,
    /// Whether the owning scope may still spawn more jobs.
    open: AtomicBool,
    /// Set when any job panicked; cancels the rest of the batch.
    panicked: AtomicBool,
    /// Completion signal: callers wait here until `pending` reaches zero.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl Batch {
    fn new(cap: usize) -> Self {
        Batch {
            queue: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            // One executor slot is pre-reserved for the submitting thread
            // (it participates unconditionally in `scope_capped`), so
            // workers can claim at most `cap − 1` and the cap is exact.
            executors: AtomicUsize::new(1),
            cap: cap.max(1),
            open: AtomicBool::new(true),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// Active batches; workers scan this round-robin to steal work.
    /// Lock order: `active` strictly before any `Batch::queue`.
    active: Mutex<Vec<Arc<Batch>>>,
    /// Workers park here when no batch has claimable work.
    work_cv: Condvar,
    /// Tells workers to exit once the pool handle is dropped.
    shutdown: AtomicBool,
}

/// A work-stealing worker pool. Most code should use the process-global
/// instance via [`global`]; dedicated instances are for tests and for
/// embedding with a custom size.
pub struct Pool {
    threads: usize,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Structured-concurrency handle passed to the closure of [`Pool::scope`].
///
/// `'env` is the lifetime of everything the spawned jobs may borrow; the
/// scope call does not return until every spawned job has finished (or was
/// cancelled and dropped), so those borrows never dangle.
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    batch: Arc<Batch>,
    /// Invariant in `'env`, exactly like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a job onto the pool. Jobs start as soon as a worker (or the
    /// scope's caller, once the scope closure returns) picks them up.
    ///
    /// Panics in the job are reported as [`PoolError::JobPanicked`] by the
    /// enclosing [`Pool::scope`] call, after cancelling the batch's
    /// remaining jobs.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the job may borrow data of lifetime 'env. The enclosing
        // `scope_capped` call waits until `pending == 0` before returning,
        // and every enqueued job is either executed or dropped (on
        // cancellation) before that counter reaches zero — both strictly
        // before 'env can end. The erased box therefore never outlives the
        // borrows it captures.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        self.batch.pending.fetch_add(1, Ordering::SeqCst);
        self.batch.queue.lock().push_back(job);
        self.pool.notify_work();
    }
}

impl Pool {
    /// Creates a pool of parallelism `threads` (clamped to ≥ 1), spawning
    /// `threads − 1` background workers — the submitting thread is always
    /// the remaining executor.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            active: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        for i in 0..threads - 1 {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ldp-pool-{i}"))
                .spawn(move || worker_loop(&shared, i))
                .expect("spawning a pool worker");
        }
        Pool { threads, shared }
    }

    /// The pool's parallelism: background workers plus the caller.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `jobs` indexed closures and returns their results in index
    /// order. Equivalent to [`Pool::run_capped`] with no concurrency cap.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_capped(jobs, usize::MAX, f)
    }

    /// Runs `jobs` indexed closures with at most `cap` concurrent
    /// executors (the submitting thread holds one of the `cap` slots, so
    /// `cap = 1` executes strictly serially on the caller), returning
    /// results in index order.
    ///
    /// Job `i` computes `f(i)`; derive all per-job state (RNG streams,
    /// shard bounds) from `i` and results are independent of worker count.
    /// The first panicking job cancels the batch and the call returns
    /// [`PoolError::JobPanicked`].
    pub fn run_capped<T, F>(&self, jobs: usize, cap: usize, f: F) -> Result<Vec<T>, PoolError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if jobs == 0 {
            return Ok(Vec::new());
        }
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        self.scope_capped(cap, |scope| {
            for (i, slot) in slots.iter().enumerate() {
                let f = &f;
                scope.spawn(move || {
                    *slot.lock() = Some(f(i));
                });
            }
        })?;
        let mut out = Vec::with_capacity(jobs);
        for slot in slots {
            out.push(slot.into_inner().ok_or(PoolError::JobPanicked)?);
        }
        Ok(out)
    }

    /// Runs two closures, potentially in parallel, and returns both
    /// results. Rayon-style structured join built on [`Pool::scope`].
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> Result<(RA, RB), PoolError>
    where
        RA: Send,
        RB: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
    {
        let ra: Mutex<Option<RA>> = Mutex::new(None);
        let rb: Mutex<Option<RB>> = Mutex::new(None);
        self.scope(|scope| {
            scope.spawn(|| {
                *rb.lock() = Some(b());
            });
            scope.spawn(|| {
                *ra.lock() = Some(a());
            });
        })?;
        match (ra.into_inner(), rb.into_inner()) {
            (Some(ra), Some(rb)) => Ok((ra, rb)),
            _ => Err(PoolError::JobPanicked),
        }
    }

    /// Structured concurrency: `f` receives a [`Scope`] whose
    /// [`Scope::spawn`]ed jobs all complete before `scope` returns.
    /// Equivalent to [`Pool::scope_capped`] with no concurrency cap.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> Result<R, PoolError> {
        self.scope_capped(usize::MAX, f)
    }

    /// [`Pool::scope`] with at most `cap` concurrent executors working on
    /// this scope's jobs. The submitting thread always participates and
    /// holds one of the `cap` slots from the start — that reservation is
    /// what keeps nested submissions deadlock-free (a batch can always be
    /// finished by its caller alone) while keeping the cap exact:
    /// workers take at most `cap − 1` slots, so `cap = 1` runs the whole
    /// batch serially on the caller.
    pub fn scope_capped<'env, R>(
        &self,
        cap: usize,
        f: impl FnOnce(&Scope<'_, 'env>) -> R,
    ) -> Result<R, PoolError> {
        let batch = Arc::new(Batch::new(cap));
        self.shared.active.lock().push(Arc::clone(&batch));
        let scope = Scope {
            pool: self,
            batch: Arc::clone(&batch),
            _env: PhantomData,
        };
        // Even if `f` panics, the already-spawned jobs must finish (or be
        // cancelled and dropped) before we unwind out of 'env.
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        batch.open.store(false, Ordering::SeqCst);
        // Participate on the executor slot `Batch::new` reserved for the
        // caller.
        drain(&batch);
        batch.executors.fetch_sub(1, Ordering::SeqCst);
        wait_done(&batch);
        self.shared
            .active
            .lock()
            .retain(|b| !Arc::ptr_eq(b, &batch));
        match body {
            Ok(r) => {
                if batch.panicked.load(Ordering::SeqCst) {
                    Err(PoolError::JobPanicked)
                } else {
                    Ok(r)
                }
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Wakes one parked worker after new work became visible.
    fn notify_work(&self) {
        // Locking `active` (even briefly) orders this notification after
        // the enqueue: a worker either sees the job during its scan or is
        // already parked and gets woken.
        drop(self.shared.active.lock());
        self.shared.work_cv.notify_one();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.shared.active.lock());
        self.shared.work_cv.notify_all();
    }
}

/// Picks a batch with claimable work, registering as one of its executors.
/// `rotation` rotates the scan start so batches are served fairly.
fn claim(active: &[Arc<Batch>], rotation: &mut usize) -> Option<Arc<Batch>> {
    let n = active.len();
    for i in 0..n {
        let idx = (*rotation + i) % n;
        let batch = &active[idx];
        if batch.queue.lock().is_empty() {
            continue;
        }
        let executors = batch.executors.fetch_add(1, Ordering::SeqCst);
        if executors >= batch.cap {
            batch.executors.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        *rotation = idx + 1;
        return Some(Arc::clone(batch));
    }
    None
}

/// Executes jobs from `batch` until its queue is empty.
fn drain(batch: &Batch) {
    loop {
        let job = batch.queue.lock().pop_front();
        match job {
            Some(job) => run_job(batch, job),
            None => break,
        }
    }
}

/// Runs one job, converting a panic into batch cancellation.
fn run_job(batch: &Batch, job: Job) {
    if batch.panicked.load(Ordering::SeqCst) {
        // Cancelled batch: drop the job without running it.
        drop(job);
        finish(batch, 1);
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(job));
    if outcome.is_err() {
        batch.panicked.store(true, Ordering::SeqCst);
        // Fail fast: claim and drop everything still queued.
        let drained: Vec<Job> = {
            let mut queue = batch.queue.lock();
            queue.drain(..).collect()
        };
        let cancelled = drained.len();
        drop(drained);
        if cancelled > 0 {
            finish(batch, cancelled);
        }
    }
    finish(batch, 1);
}

/// Marks `count` jobs finished, signalling completion on the last one.
fn finish(batch: &Batch, count: usize) {
    let previous = batch.pending.fetch_sub(count, Ordering::SeqCst);
    if previous == count && !batch.open.load(Ordering::SeqCst) {
        // Empty critical section: ensures the waiter is either still
        // pre-check (and will observe pending == 0) or already parked in
        // `wait` (and will receive the notification).
        drop(batch.done_lock.lock());
        batch.done_cv.notify_all();
    }
}

/// Blocks until every job of `batch` has finished.
fn wait_done(batch: &Batch) {
    let mut guard = batch.done_lock.lock();
    while batch.pending.load(Ordering::SeqCst) > 0 {
        batch.done_cv.wait(&mut guard);
    }
}

/// The worker main loop: steal a batch with work, drain it, repeat.
fn worker_loop(shared: &Shared, index: usize) {
    let mut rotation = index; // desynchronize scan starts across workers
    loop {
        let claimed = {
            let mut active = shared.active.lock();
            loop {
                if let Some(batch) = claim(&active, &mut rotation) {
                    break Some(batch);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                shared.work_cv.wait(&mut active);
            }
        };
        match claimed {
            Some(batch) => {
                drain(&batch);
                batch.executors.fetch_sub(1, Ordering::SeqCst);
            }
            None => return,
        }
    }
}

/// Parses a thread-count override, falling back to the host parallelism
/// for unset, empty, zero, or malformed values.
fn threads_from_env(value: Option<&str>) -> usize {
    match value.map(str::trim).filter(|v| !v.is_empty()) {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => host_parallelism(),
        },
        None => host_parallelism(),
    }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-global pool, created on first use. Sized by
/// [`THREADS_ENV`] when set to a positive integer, else by
/// `std::thread::available_parallelism()`; the size is fixed for the
/// lifetime of the process once initialized.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(threads_from_env(std::env::var(THREADS_ENV).ok().as_deref())))
}

/// The size the global pool has — or would have — **without creating it**:
/// sizing queries (`ExperimentConfig::default()`, shard-count selection)
/// must not spawn worker threads as a side effect. Matches
/// [`Pool::threads`] of [`global`] exactly: once the pool exists its
/// recorded size is returned, and before that the same
/// [`THREADS_ENV`]/host-parallelism resolution the pool constructor uses.
#[must_use]
pub fn configured_threads() -> usize {
    match GLOBAL.get() {
        Some(pool) => pool.threads(),
        None => threads_from_env(std::env::var(THREADS_ENV).ok().as_deref()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(100, |i| i * 3).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_is_deterministic_across_pool_sizes() {
        let reference: Vec<u64> = (0..64).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 7] {
            let pool = Pool::new(threads);
            let out = pool.run(64, |i| (i as u64).wrapping_mul(0x9E37)).unwrap();
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let pool = Pool::new(2);
        let out: Vec<usize> = pool.run(0, |i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let pool = Pool::new(3);
        let (a, b) = pool.join(|| 21 * 2, || "forty-two").unwrap();
        assert_eq!(a, 42);
        assert_eq!(b, "forty-two");
    }

    #[test]
    fn scope_observes_borrowed_environment() {
        let pool = Pool::new(3);
        let mut results = vec![0usize; 8];
        let source: Vec<usize> = (0..8).map(|i| i + 1).collect();
        pool.scope(|scope| {
            for (slot, &v) in results.iter_mut().zip(&source) {
                scope.spawn(move || *slot = v * 10);
            }
        })
        .unwrap();
        assert_eq!(results, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn nested_submissions_complete() {
        let pool = Pool::new(2);
        let out = pool
            .run(6, |i| {
                // Each outer job fans out again on the same pool.
                let inner = global().run(4, move |j| i * 10 + j).unwrap();
                inner.iter().sum::<usize>()
            })
            .unwrap();
        let expected: Vec<usize> = (0..6).map(|i| 4 * i * 10 + 6).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_surfaces_as_error_and_pool_survives() {
        let pool = Pool::new(3);
        let r = pool.run(16, |i| {
            assert!(i != 9, "injected failure");
            i
        });
        assert_eq!(r, Err(PoolError::JobPanicked));
        // The same pool keeps working afterwards.
        let ok = pool.run(16, |i| i + 1).unwrap();
        assert_eq!(ok.len(), 16);
    }

    #[test]
    fn capped_run_still_finishes_everything() {
        let pool = Pool::new(4);
        let out = pool.run_capped(40, 2, |i| i % 5).unwrap();
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn cap_of_one_is_strictly_serial_on_the_caller() {
        // The caller's pre-reserved executor slot IS the whole cap, so no
        // background worker may touch the batch even on a wide pool.
        let pool = Pool::new(4);
        let caller = std::thread::current().id();
        let ids = pool
            .run_capped(32, 1, |_| std::thread::current().id())
            .unwrap();
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn configured_threads_matches_global_and_does_not_require_the_pool() {
        // Before and after the pool exists the answer is identical; the
        // pre-existence branch is covered implicitly when this test runs
        // first in the process, and the equality holds either way.
        let before = configured_threads();
        assert_eq!(before, global().threads());
        assert_eq!(configured_threads(), global().threads());
    }

    #[test]
    fn env_parsing_falls_back_sanely() {
        let host = host_parallelism();
        assert_eq!(threads_from_env(Some("7")), 7);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        assert_eq!(threads_from_env(Some("0")), host);
        assert_eq!(threads_from_env(Some("-3")), host);
        assert_eq!(threads_from_env(Some("lots")), host);
        assert_eq!(threads_from_env(Some("")), host);
        assert_eq!(threads_from_env(None), host);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.run(8, |_| std::thread::current().id()).unwrap();
        assert!(ids.iter().all(|id| *id == caller));
    }
}
