//! Token-bucket admission for the serve path's per-connection rate cap.
//!
//! The serve path charges every data frame against a per-connection
//! bucket sized in **reports per second** (`--max-rps-per-conn`). The
//! bucket refills continuously at `rate` tokens/second up to `burst`
//! tokens; a frame of `cost` reports is admitted only when that many
//! tokens are available, and a refused frame is *shed* with a `!busy`
//! retry hint instead of being absorbed — the client re-sends the same
//! frame after the hinted delay, so rate limiting never loses or reorders
//! a report.
//!
//! The core is deliberately clock-free: [`TokenBucket::admit_at`] takes
//! the current instant as an argument, so the invariant the overload
//! suite pins — over any window `w`, admitted cost ≤ `rate × w + burst` —
//! is testable deterministically, with simulated time.

use std::time::{Duration, Instant};

/// A continuous-refill token bucket.
///
/// Starts full (a new connection may burst immediately). Costs larger
/// than the whole burst are clamped to it, so one giant frame drains the
/// bucket completely instead of being refused forever.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate in tokens per second (> 0).
    rate: f64,
    /// Bucket capacity: the largest instantaneous burst.
    burst: f64,
    /// Tokens available at `refilled_at`.
    tokens: f64,
    /// The instant `tokens` was last brought up to date.
    refilled_at: Instant,
}

impl TokenBucket {
    /// Creates a full bucket refilling at `rate` tokens/second with
    /// capacity `burst` (both clamped to ≥ a small positive floor so a
    /// misconfigured zero never divides or deadlocks).
    #[must_use]
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let rate = if rate > 0.0 { rate } else { 1.0 };
        let burst = if burst > 0.0 { burst } else { 1.0 };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            refilled_at: now,
        }
    }

    /// Charges `cost` tokens at instant `now`. `Ok(())` admits; `Err(d)`
    /// refuses and reports how long the caller should wait before the
    /// bucket could admit this cost — the `!busy` retry hint.
    ///
    /// `now` instants must be non-decreasing per bucket (elapsed time is
    /// measured against the previous call); a stale instant is treated as
    /// zero elapsed time, never a negative refill.
    pub fn admit_at(&mut self, cost: u64, now: Instant) -> Result<(), Duration> {
        let elapsed = now.saturating_duration_since(self.refilled_at);
        self.refilled_at = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate).min(self.burst);
        // A cost above the whole capacity could never be admitted; clamp
        // it so the frame drains a full bucket instead of wedging retries.
        let cost = (cost as f64).min(self.burst);
        if self.tokens >= cost {
            self.tokens -= cost;
            return Ok(());
        }
        let deficit = cost - self.tokens;
        Err(Duration::from_secs_f64(deficit / self.rate))
    }

    /// The refill rate in tokens per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The bucket capacity in tokens.
    #[must_use]
    pub fn burst(&self) -> f64 {
        self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(start: Instant, ms: u64) -> Instant {
        start + Duration::from_millis(ms)
    }

    #[test]
    fn a_fresh_bucket_admits_a_full_burst_then_refuses() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 5.0, start);
        for _ in 0..5 {
            bucket.admit_at(1, start).unwrap();
        }
        let wait = bucket.admit_at(1, start).unwrap_err();
        assert!(wait > Duration::ZERO);
        // The hint is exactly the time to refill one token at 10/s.
        assert!((wait.as_secs_f64() - 0.1).abs() < 1e-9, "wait {wait:?}");
    }

    #[test]
    fn waiting_the_hinted_delay_admits_the_refused_cost() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(20.0, 10.0, start);
        bucket.admit_at(10, start).unwrap();
        let wait = bucket.admit_at(4, start).unwrap_err();
        bucket.admit_at(4, start + wait).unwrap();
    }

    #[test]
    fn costs_above_the_burst_drain_a_full_bucket_instead_of_wedging() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 8.0, start);
        bucket.admit_at(1_000, start).unwrap();
        // The oversize admit drained everything: next frame must wait.
        assert!(bucket.admit_at(1, start).is_err());
        // And it becomes admittable again after a refill — no dead state.
        bucket.admit_at(1, at(start, 200)).unwrap();
    }

    #[test]
    fn stale_instants_never_refill_backwards() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 2.0, start);
        bucket.admit_at(2, at(start, 500)).unwrap();
        // An instant before the last refill point is zero elapsed time.
        assert!(bucket.admit_at(2, start).is_err());
    }

    #[test]
    fn zero_parameters_are_clamped_not_divided_by() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(0.0, 0.0, start);
        assert!(bucket.rate() > 0.0 && bucket.burst() > 0.0);
        bucket.admit_at(1, start).unwrap();
        assert!(bucket.admit_at(1, start).is_err());
    }

    /// The satellite property, pinned over randomized schedules with
    /// simulated time: for any sequence of admit attempts inside a window
    /// `w`, the bucket never admits more than `rate × w + burst` cost.
    #[test]
    fn never_admits_more_than_rate_times_window_plus_burst() {
        let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // xorshift64* — the workspace's deterministic test PRNG idiom.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let start = Instant::now();
        for case in 0..200 {
            let rate = 1.0 + (next() % 500) as f64 / 10.0; // 1..51 tok/s
            let burst = 1.0 + (next() % 400) as f64 / 10.0; // 1..41 tok
            let mut bucket = TokenBucket::new(rate, burst, start);
            let mut admitted = 0.0_f64;
            let mut clock_ms = 0u64;
            let attempts = 50 + next() % 200;
            for _ in 0..attempts {
                clock_ms += next() % 40; // bursty, irregular arrivals
                let cost = 1 + next() % 8;
                if bucket.admit_at(cost, at(start, clock_ms)).is_ok() {
                    admitted += (cost as f64).min(burst);
                }
            }
            let window = clock_ms as f64 / 1_000.0;
            let bound = rate * window + burst;
            assert!(
                admitted <= bound + 1e-6,
                "case {case}: admitted {admitted} > rate {rate} x window {window} + burst {burst}"
            );
        }
    }
}
