//! The discrete Haar transform and the HaarHRR estimator
//! (Kulkarni et al., PVLDB 2019; paper §4.2).
//!
//! A binary tree is built over the `d = 2^h` buckets. An inner node `a` at
//! height `m` represents the Haar coefficient
//! `c_a = (C_l − C_r) / 2^{m/2}` where `C_l`/`C_r` are the leaf sums of its
//! left/right subtrees. Under LDP, each user is assigned a uniform level and
//! privatizes its one-hot (coefficient index, sign) pair with Hadamard
//! Randomized Response; the aggregator forms unbiased coefficient estimates
//! and inverts the transform. The root total is public (1), which the
//! inverse transform uses directly.

use crate::error::HierarchyError;
use crate::tree::TreeShape;
use ldp_cfo::{FrequencyOracle, Hrr};
use ldp_core::Mechanism;
use rand::Rng;

/// Haar coefficients of a length-`2^h` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct HaarCoefficients {
    /// Sum of all leaves.
    pub total: f64,
    /// `details[m-1][k]` is the coefficient of the height-`m` node `k`
    /// (so `details[m-1]` has `2^h / 2^m` entries).
    pub details: Vec<Vec<f64>>,
}

/// Forward discrete Haar transform. `leaves.len()` must be a power of two
/// of at least 2.
pub fn haar_forward(leaves: &[f64]) -> Result<HaarCoefficients, HierarchyError> {
    let d = leaves.len();
    if d < 2 || !d.is_power_of_two() {
        return Err(HierarchyError::InvalidParameter(format!(
            "Haar transform needs a power-of-two length >= 2, got {d}"
        )));
    }
    let h = d.trailing_zeros() as usize;
    let mut sums = leaves.to_vec();
    let mut details = Vec::with_capacity(h);
    for m in 1..=h {
        let scale = 2f64.powf(m as f64 / 2.0);
        let mut next = Vec::with_capacity(sums.len() / 2);
        let mut det = Vec::with_capacity(sums.len() / 2);
        for pair in sums.chunks_exact(2) {
            next.push(pair[0] + pair[1]);
            det.push((pair[0] - pair[1]) / scale);
        }
        details.push(det);
        sums = next;
    }
    Ok(HaarCoefficients {
        total: sums[0],
        details,
    })
}

/// Inverse discrete Haar transform.
pub fn haar_inverse(coeffs: &HaarCoefficients) -> Result<Vec<f64>, HierarchyError> {
    let h = coeffs.details.len();
    if h == 0 {
        return Err(HierarchyError::InvalidParameter(
            "need at least one detail level".into(),
        ));
    }
    for (i, level) in coeffs.details.iter().enumerate() {
        let expected = 1usize << (h - 1 - i);
        if level.len() != expected {
            return Err(HierarchyError::InvalidParameter(format!(
                "detail level {i} has {} coefficients, expected {expected}",
                level.len()
            )));
        }
    }
    let mut sums = vec![coeffs.total];
    for m in (1..=h).rev() {
        let scale = 2f64.powf(m as f64 / 2.0);
        let det = &coeffs.details[m - 1];
        let mut next = Vec::with_capacity(sums.len() * 2);
        for (s, c) in sums.iter().zip(det.iter()) {
            let diff = c * scale;
            next.push((s + diff) / 2.0);
            next.push((s - diff) / 2.0);
        }
        sums = next;
    }
    Ok(sums)
}

/// The HaarHRR distribution estimator.
#[derive(Debug, Clone)]
pub struct HaarHrr {
    shape: TreeShape,
    eps: f64,
    /// Per-height HRR oracles over the (coefficient, sign) item domains
    /// (index `m - 1` for heights 1..=h), built once at construction and
    /// shared by the batch and streaming collection paths.
    oracles: Vec<Hrr>,
}

impl HaarHrr {
    /// Creates a HaarHRR estimator over `d` buckets (`d` must be a power of
    /// two) with budget `eps`.
    pub fn new(d: usize, eps: f64) -> Result<Self, HierarchyError> {
        let shape = TreeShape::new(2, d)?;
        ldp_core::Epsilon::new(eps)?;
        let leaves = shape.leaves();
        let oracles = (1..=shape.height())
            .map(|m| Hrr::new(2 * (leaves >> m), eps))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HaarHrr {
            shape,
            eps,
            oracles,
        })
    }

    /// The HRR oracle serving coefficient height `m` (1..=h).
    pub(crate) fn height_oracle(&self, m: usize) -> &Hrr {
        &self.oracles[m - 1]
    }

    /// The tree geometry.
    #[must_use]
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The privacy budget ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Full pipeline: the population is split uniformly over coefficient
    /// levels; each user reports its (coefficient, sign) pair through HRR;
    /// the aggregator estimates every Haar coefficient and inverts the
    /// transform. Returns leaf-level frequency estimates (possibly negative
    /// — HaarHRR is evaluated on range queries only, paper Table 2).
    #[allow(clippy::needless_range_loop)] // levels are indexed by height m
    pub fn estimate_leaves<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        rng: &mut R,
    ) -> Result<Vec<f64>, HierarchyError> {
        if values.is_empty() {
            return Err(HierarchyError::InvalidParameter(
                "need at least one user report".into(),
            ));
        }
        let d = self.shape.leaves();
        let h = self.shape.height();
        for &v in values {
            if v >= d {
                return Err(HierarchyError::InvalidParameter(format!(
                    "value {v} outside domain of {d} buckets"
                )));
            }
        }
        // Assign users to coefficient heights m = 1..=h uniformly.
        let mut per_level: Vec<Vec<usize>> = vec![Vec::new(); h + 1];
        for &v in values {
            let m = rng.gen_range(1..=h);
            // Coefficient index and sign for value v at height m.
            let k = v >> m;
            let right = (v >> (m - 1)) & 1;
            per_level[m].push(2 * k + right);
        }

        // Randomize each height's group in order (the same RNG stream as
        // `FrequencyOracle::run`), absorbing reports into the streaming
        // state; coefficient estimation and the inverse transform are one
        // routine shared with `ldp_core::Mechanism::finalize`, so the
        // batch and streaming paths cannot drift.
        let mut state = Mechanism::empty_state(self);
        for (m, group) in per_level.iter().enumerate().skip(1) {
            let oracle = self.height_oracle(m);
            for &item in group {
                let report = FrequencyOracle::randomize(oracle, item, rng)?;
                Mechanism::absorb(oracle, state.level_mut(m), &report)?;
            }
        }
        Ok(Mechanism::finalize(self, &state)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    fn forward_inverse_roundtrip() {
        let leaves = vec![0.1, 0.25, 0.05, 0.2, 0.15, 0.05, 0.1, 0.1];
        let c = haar_forward(&leaves).unwrap();
        let back = haar_inverse(&c).unwrap();
        for (a, b) in leaves.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_matches_definition_on_small_input() {
        // leaves [3, 1]: total 4, c = (3-1)/sqrt(2).
        let c = haar_forward(&[3.0, 1.0]).unwrap();
        assert!((c.total - 4.0).abs() < 1e-12);
        assert!((c.details[0][0] - 2.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn coefficient_levels_have_expected_sizes() {
        let c = haar_forward(&[0.0; 16]).unwrap();
        assert_eq!(c.details.len(), 4);
        assert_eq!(c.details[0].len(), 8); // height 1
        assert_eq!(c.details[3].len(), 1); // height 4 (root split)
    }

    #[test]
    fn transform_validates_lengths() {
        assert!(haar_forward(&[1.0]).is_err());
        assert!(haar_forward(&[1.0, 2.0, 3.0]).is_err());
        let mut c = haar_forward(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        c.details[0].pop();
        assert!(haar_inverse(&c).is_err());
        assert!(haar_inverse(&HaarCoefficients {
            total: 1.0,
            details: vec![]
        })
        .is_err());
    }

    #[test]
    fn transform_preserves_energy() {
        // The normalized Haar basis is orthonormal, so
        // ||x||² = total²/d + Σ c² · (per-level scaling).
        // Check the simpler Parseval surrogate: roundtrip stability on a
        // random-ish vector.
        let leaves: Vec<f64> = (0..32).map(|i| ((i * 37 + 11) % 17) as f64).collect();
        let back = haar_inverse(&haar_forward(&leaves).unwrap()).unwrap();
        for (a, b) in leaves.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn haarhrr_construction_validates() {
        assert!(HaarHrr::new(1024, 1.0).is_ok());
        assert!(HaarHrr::new(100, 1.0).is_err());
        assert!(HaarHrr::new(16, -1.0).is_err());
    }

    #[test]
    fn haarhrr_high_epsilon_recovers_distribution() {
        let est = HaarHrr::new(16, 8.0).unwrap();
        let mut rng = SplitMix64::new(81);
        let values: Vec<usize> = (0..80_000)
            .map(|i| if i % 4 == 0 { 3 } else { 12 })
            .collect();
        let leaves = est.estimate_leaves(&values, &mut rng).unwrap();
        assert!((leaves[3] - 0.25).abs() < 0.05, "leaf3={}", leaves[3]);
        assert!((leaves[12] - 0.75).abs() < 0.05, "leaf12={}", leaves[12]);
        let sum: f64 = leaves.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "leaves always sum to the public total"
        );
    }

    #[test]
    fn haarhrr_leaves_sum_to_one_even_when_noisy() {
        // The inverse transform pins the total to 1 regardless of noise.
        let est = HaarHrr::new(32, 0.5).unwrap();
        let mut rng = SplitMix64::new(82);
        let values: Vec<usize> = (0..5_000).map(|i| i % 32).collect();
        let leaves = est.estimate_leaves(&values, &mut rng).unwrap();
        let sum: f64 = leaves.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn haarhrr_rejects_bad_input() {
        let est = HaarHrr::new(16, 1.0).unwrap();
        let mut rng = SplitMix64::new(83);
        assert!(est.estimate_leaves(&[], &mut rng).is_err());
        assert!(est.estimate_leaves(&[16], &mut rng).is_err());
    }
}
