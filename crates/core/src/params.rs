//! Validated parameter newtypes: [`Epsilon`] and [`Domain`].
//!
//! Every mechanism family in the workspace used to re-implement the same
//! `eps <= 0` and `d < 2` guards behind distinct error variants. These
//! newtypes are the single source of that validation: once a value is
//! wrapped, every downstream consumer can rely on the invariant without
//! re-checking.

use crate::error::CoreError;
use ldp_numeric::rng::mix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated privacy budget: positive and finite.
///
/// # Examples
///
/// ```
/// use ldp_core::Epsilon;
///
/// let eps = Epsilon::new(1.0).unwrap();
/// assert_eq!(eps.get(), 1.0);
/// assert!((eps.exp() - 1f64.exp()).abs() < 1e-15);
/// // Non-positive, infinite, and NaN budgets never construct.
/// assert!(Epsilon::new(0.0).is_err());
/// assert!(Epsilon::new(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Wraps `eps`, rejecting non-positive, infinite, and NaN budgets.
    pub fn new(eps: f64) -> Result<Self, CoreError> {
        if !(eps > 0.0) || !eps.is_finite() {
            return Err(CoreError::InvalidEpsilon(eps));
        }
        Ok(Epsilon(eps))
    }

    /// The raw budget value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// `eᵉ`, the likelihood ratio bound every ε-LDP randomizer satisfies.
    #[must_use]
    pub fn exp(self) -> f64 {
        self.0.exp()
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = CoreError;

    fn try_from(eps: f64) -> Result<Self, CoreError> {
        Epsilon::new(eps)
    }
}

impl From<Epsilon> for f64 {
    fn from(eps: Epsilon) -> f64 {
        eps.get()
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// A validated categorical/bucketized domain size: at least two values.
///
/// # Examples
///
/// ```
/// use ldp_core::Domain;
///
/// let d = Domain::new(64).unwrap();
/// assert_eq!(d.get(), 64);
/// assert!(d.contains(63));
/// assert!(d.check(64).is_err()); // out of range
/// assert!(Domain::new(1).is_err()); // a 1-value domain carries no signal
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Domain(usize);

impl Domain {
    /// Wraps `size`, rejecting domains with fewer than two values.
    pub fn new(size: usize) -> Result<Self, CoreError> {
        if size < 2 {
            return Err(CoreError::DomainTooSmall(size));
        }
        Ok(Domain(size))
    }

    /// The raw domain size.
    #[must_use]
    pub const fn get(self) -> usize {
        self.0
    }

    /// Whether `index` names a value of this domain.
    #[must_use]
    pub const fn contains(self, index: usize) -> bool {
        index < self.0
    }

    /// Rejects indices outside the domain.
    pub fn check(self, index: usize) -> Result<(), CoreError> {
        if !self.contains(index) {
            return Err(CoreError::InvalidInput(format!(
                "value {index} outside domain of size {}",
                self.0
            )));
        }
        Ok(())
    }
}

impl TryFrom<usize> for Domain {
    type Error = CoreError;

    fn try_from(size: usize) -> Result<Self, CoreError> {
        Domain::new(size)
    }
}

impl From<Domain> for usize {
    fn from(d: Domain) -> usize {
        d.get()
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d={}", self.0)
    }
}

/// Folds a tag and a list of configuration fields into a stable 64-bit
/// fingerprint (SplitMix64 finalizer mixing). Mechanisms use this to detect
/// attempts to merge aggregator shards built for different configurations;
/// it is deterministic across processes and architectures.
#[must_use]
pub fn fingerprint_fields(tag: u64, fields: &[u64]) -> u64 {
    let mut acc = mix64(tag ^ 0x9E37_79B9_7F4A_7C15);
    for &f in fields {
        acc = mix64(acc ^ mix64(f));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validates() {
        assert!(Epsilon::new(1.0).is_ok());
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(-1.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert!(Epsilon::new(f64::INFINITY).is_err());
        assert_eq!(Epsilon::new(2.0).unwrap().get(), 2.0);
        assert!((Epsilon::new(1.0).unwrap().exp() - 1f64.exp()).abs() < 1e-15);
    }

    #[test]
    fn epsilon_conversions_and_display() {
        let eps: Epsilon = 0.5f64.try_into().unwrap();
        assert_eq!(f64::from(eps), 0.5);
        assert!(eps.to_string().contains("0.5"));
        assert!(Epsilon::try_from(-2.0).is_err());
    }

    #[test]
    fn domain_validates() {
        assert!(Domain::new(2).is_ok());
        assert!(Domain::new(1).is_err());
        assert!(Domain::new(0).is_err());
        let d = Domain::new(4).unwrap();
        assert_eq!(d.get(), 4);
        assert!(d.contains(3));
        assert!(!d.contains(4));
        assert!(d.check(3).is_ok());
        assert!(d.check(4).is_err());
    }

    #[test]
    fn domain_conversions_and_display() {
        let d: Domain = 8usize.try_into().unwrap();
        assert_eq!(usize::from(d), 8);
        assert!(d.to_string().contains('8'));
    }

    #[test]
    fn fingerprints_separate_configurations() {
        let a = fingerprint_fields(1, &[1.0f64.to_bits(), 64]);
        let b = fingerprint_fields(1, &[2.0f64.to_bits(), 64]);
        let c = fingerprint_fields(2, &[1.0f64.to_bits(), 64]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, fingerprint_fields(1, &[1.0f64.to_bits(), 64]));
    }
}
