//! Hadamard Randomized Response (HRR) and the fast Walsh–Hadamard
//! transform.
//!
//! HRR is local hashing with `g = 2` where the hash family is the rows of a
//! Hadamard matrix: user `j` with value `x` picks a uniform row `r_j`,
//! computes the entry `φ[r_j, x] ∈ {-1, +1}`, flips it with probability
//! `1/(eᵉ+1)`, and reports `(r_j, bit)`. The aggregator recovers unbiased
//! estimates of the Walsh–Hadamard spectrum of the frequency vector and
//! inverts it with the O(D log D) fast transform. This is the frequency
//! oracle Kulkarni et al. (PVLDB '19) use inside HaarHRR; the paper calls it
//! "Hadamard random response" (§4.2).

use crate::error::CfoError;
use crate::oracle::{check_value, FrequencyOracle};
use ldp_core::{Domain, Epsilon};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Entry `φ[r, c] ∈ {-1, +1}` of the (Sylvester) Hadamard matrix of any
/// power-of-two order: `(-1)^(popcount(r & c))`.
#[inline]
#[must_use]
pub fn hadamard_entry(r: usize, c: usize) -> f64 {
    if (r & c).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// In-place fast Walsh–Hadamard transform. `data.len()` must be a power of
/// two. Applying it twice multiplies by `data.len()`.
pub fn fwht(data: &mut [f64]) -> Result<(), CfoError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(CfoError::InvalidParameter(format!(
            "FWHT length must be a power of two, got {n}"
        )));
    }
    let mut h = 1;
    while h < n {
        for chunk in data.chunks_mut(2 * h) {
            let (a, b) = chunk.split_at_mut(h);
            for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                let (u, v) = (*x, *y);
                *x = u + v;
                *y = u - v;
            }
        }
        h *= 2;
    }
    Ok(())
}

/// Next power of two at or above `d`.
#[must_use]
pub fn next_pow2(d: usize) -> usize {
    d.next_power_of_two()
}

/// One HRR report: the chosen Hadamard row and the perturbed ±1 entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HrrReport {
    /// Row index in the padded Hadamard matrix.
    pub row: u32,
    /// The perturbed matrix entry, `+1` or `-1`.
    pub bit: i8,
}

/// The HRR frequency oracle.
#[derive(Debug, Clone)]
pub struct Hrr {
    d: usize,
    /// Domain padded to a power of two.
    padded: usize,
    eps: f64,
    /// Probability of keeping the true bit.
    p: f64,
}

impl Hrr {
    /// Creates an HRR oracle over domain size `d` (padded internally to the
    /// next power of two).
    pub fn new(d: usize, eps: f64) -> Result<Self, CfoError> {
        Domain::new(d)?;
        Epsilon::new(eps)?;
        let e = eps.exp();
        Ok(Hrr {
            d,
            padded: next_pow2(d),
            eps,
            p: e / (e + 1.0),
        })
    }

    /// Size of the padded (power-of-two) report domain.
    #[must_use]
    pub fn padded_size(&self) -> usize {
        self.padded
    }

    /// Approximate per-estimate variance: HRR behaves like local hashing
    /// with g = 2, giving `(eᵉ+1)² / ((eᵉ-1)² n)`.
    #[must_use]
    pub fn theoretical_variance(eps: f64, n: usize) -> f64 {
        let e = eps.exp();
        (e + 1.0) * (e + 1.0) / ((e - 1.0) * (e - 1.0) * n as f64)
    }

    /// Inverts integer per-row bit sums into frequency estimates; shared by
    /// one-shot aggregation and the streaming state. Summing the ±1 bits in
    /// `i64` is exact (so shard merges are exact), and converting each row
    /// total to `f64` reproduces the sequential float accumulation bit for
    /// bit because every intermediate is an integer below 2⁵³.
    pub(crate) fn estimate_from_spectrum(&self, spectrum: &[i64], n: u64) -> Vec<f64> {
        if n == 0 {
            return vec![0.0; self.d];
        }
        let mut spec: Vec<f64> = spectrum.iter().map(|&c| c as f64).collect();
        let gamma = 2.0 * self.p - 1.0; // (e^eps - 1)/(e^eps + 1)
        let scale = self.padded as f64 / (n as f64 * gamma);
        for s in &mut spec {
            *s *= scale;
        }
        // Invert: f = (1/D) * H * spectrum.
        fwht(&mut spec).expect("padded size is a power of two");
        let inv_d = 1.0 / self.padded as f64;
        spec.truncate(self.d);
        for s in &mut spec {
            *s *= inv_d;
        }
        spec
    }
}

impl FrequencyOracle for Hrr {
    type Report = HrrReport;

    fn domain_size(&self) -> usize {
        self.d
    }

    fn epsilon(&self) -> f64 {
        self.eps
    }

    fn randomize<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> Result<HrrReport, CfoError> {
        check_value(value, self.d)?;
        let row = rng.gen_range(0..self.padded as u32);
        let true_bit = hadamard_entry(row as usize, value);
        let bit = if rng.gen::<f64>() < self.p {
            true_bit
        } else {
            -true_bit
        };
        Ok(HrrReport {
            row,
            bit: bit as i8,
        })
    }

    fn aggregate(&self, reports: &[HrrReport]) -> Vec<f64> {
        // Per-row sums of the ±1 bits estimate the Walsh-Hadamard spectrum
        // of the frequency vector.
        let mut spectrum = vec![0i64; self.padded];
        for r in reports {
            spectrum[r.row as usize] += i64::from(r.bit);
        }
        self.estimate_from_spectrum(&spectrum, reports.len() as u64)
    }

    fn estimate_variance(&self, n: usize) -> f64 {
        Self::theoretical_variance(self.eps, n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_numeric::SplitMix64;

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs mirror the matrix
    fn hadamard_entries_match_small_matrix() {
        // Order-4 Sylvester matrix.
        let expected = [
            [1.0, 1.0, 1.0, 1.0],
            [1.0, -1.0, 1.0, -1.0],
            [1.0, 1.0, -1.0, -1.0],
            [1.0, -1.0, -1.0, 1.0],
        ];
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(hadamard_entry(r, c), expected[r][c], "({r},{c})");
            }
        }
    }

    #[test]
    fn hadamard_rows_are_orthogonal() {
        let d = 16;
        for r1 in 0..d {
            for r2 in 0..d {
                let dot: f64 = (0..d)
                    .map(|c| hadamard_entry(r1, c) * hadamard_entry(r2, c))
                    .sum();
                let expected = if r1 == r2 { d as f64 } else { 0.0 };
                assert_eq!(dot, expected);
            }
        }
    }

    #[test]
    fn fwht_twice_is_scaling() {
        let mut data = vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.0, -1.0, 2.0];
        let original = data.clone();
        fwht(&mut data).unwrap();
        fwht(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((a - b * 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fwht_matches_matrix_multiply() {
        let mut data = vec![0.3, 0.1, 0.4, 0.2];
        let original = data.clone();
        fwht(&mut data).unwrap();
        for (r, &got) in data.iter().enumerate() {
            let direct: f64 = original
                .iter()
                .enumerate()
                .map(|(c, &v)| hadamard_entry(r, c) * v)
                .sum();
            assert!((got - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn fwht_rejects_non_power_of_two() {
        assert!(fwht(&mut [1.0, 2.0, 3.0]).is_err());
        assert!(fwht(&mut []).is_err());
    }

    #[test]
    fn aggregate_is_unbiased_with_padding() {
        // Domain 12 pads to 16; estimates must still be unbiased.
        let d = 12;
        let h = Hrr::new(d, 2.0).unwrap();
        assert_eq!(h.padded_size(), 16);
        let mut rng = SplitMix64::new(21);
        let n = 150_000;
        let values: Vec<usize> = (0..n).map(|i| if i % 4 == 0 { 2 } else { 9 }).collect();
        let est = h.run(&values, &mut rng).unwrap();
        assert!((est[2] - 0.25).abs() < 0.03, "est[2]={}", est[2]);
        assert!((est[9] - 0.75).abs() < 0.03, "est[9]={}", est[9]);
        for (v, &e) in est.iter().enumerate() {
            if v != 2 && v != 9 {
                assert!(e.abs() < 0.03, "est[{v}]={e}");
            }
        }
    }

    #[test]
    fn empirical_variance_matches_theory() {
        let d = 16;
        let eps = 1.0;
        let n = 2_000;
        let trials = 200;
        let h = Hrr::new(d, eps).unwrap();
        let values = vec![1usize; n];
        let mut errs = Vec::with_capacity(trials);
        for t in 0..trials {
            let mut rng = SplitMix64::new(3000 + t as u64);
            let est = h.run(&values, &mut rng).unwrap();
            errs.push(est[0]);
        }
        let emp_var = ldp_numeric::stats::variance(&errs);
        let theory = Hrr::theoretical_variance(eps, n);
        let ratio = emp_var / theory;
        assert!(
            (0.6..1.4).contains(&ratio),
            "empirical {emp_var} vs theory {theory}"
        );
    }

    #[test]
    fn randomize_emits_valid_reports() {
        let h = Hrr::new(10, 1.0).unwrap();
        let mut rng = SplitMix64::new(5);
        for v in 0..10 {
            let r = h.randomize(v, &mut rng).unwrap();
            assert!(r.row < 16);
            assert!(r.bit == 1 || r.bit == -1);
        }
        assert!(h.randomize(10, &mut rng).is_err());
    }
}
