//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly rather than a `Result`, recovering
//! the data if a previous holder panicked. Performance characteristics are
//! those of `std::sync`, which is more than adequate for the experiment
//! runner's coarse-grained result collection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::TryLockError;

pub use std::sync::MutexGuard;
pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
