//! Exact integration helpers for building Square Wave transition matrices.
//!
//! The entry `M[j][i]` of a transition matrix needs the average, over a true
//! value `v` uniform in an input bucket, of the probability mass a wave
//! centred at `v` puts on an output bucket. For the square wave the
//! integrand is the length of the overlap between the interval
//! `[v - b, v + b]` and the output bucket — a piecewise *linear* function of
//! `v` — and for trapezoid/triangle waves it is piecewise *quadratic*. Both
//! integrate exactly with the trapezoid/Simpson rules as long as we split at
//! the breakpoints, which is what this module does.

/// Length of the overlap between `[lo1, hi1]` and `[lo2, hi2]`.
#[inline]
#[must_use]
pub fn interval_overlap(lo1: f64, hi1: f64, lo2: f64, hi2: f64) -> f64 {
    (hi1.min(hi2) - lo1.max(lo2)).max(0.0)
}

/// Computes `∫_{vlo}^{vhi} |[v-b, v+b] ∩ [l, h]| dv` exactly.
///
/// The integrand is piecewise linear in `v` with breakpoints at
/// `l-b, h-b, l+b, h+b`; the trapezoid rule on each linear piece is exact.
#[must_use]
pub fn integral_of_interval_overlap(vlo: f64, vhi: f64, b: f64, l: f64, h: f64) -> f64 {
    debug_assert!(b >= 0.0);
    if vhi <= vlo || h <= l {
        return 0.0;
    }
    let f = |v: f64| interval_overlap(v - b, v + b, l, h);
    let mut pts = vec![vlo, vhi, l - b, h - b, l + b, h + b];
    pts.retain(|&p| p >= vlo && p <= vhi);
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    pts.dedup();
    let mut total = 0.0;
    for w in pts.windows(2) {
        let (a, c) = (w[0], w[1]);
        total += 0.5 * (f(a) + f(c)) * (c - a);
    }
    total
}

/// Integrates `f` over `[lo, hi]` by composite 2-point Gauss–Legendre
/// quadrature on each sub-interval delimited by `breakpoints`, with
/// `refine` panels per piece.
///
/// Exact for functions that are piecewise *cubic* between the supplied
/// breakpoints. Gauss nodes are strictly interior, so functions with jump
/// discontinuities at the breakpoints (e.g. the square wave density) are
/// integrated exactly too — endpoint rules like Simpson would sample the
/// wrong side of the jump.
#[must_use]
pub fn integrate_with_breakpoints(
    f: impl Fn(f64) -> f64,
    breakpoints: &[f64],
    lo: f64,
    hi: f64,
    refine: usize,
) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let refine = refine.max(1);
    let mut pts = Vec::with_capacity(breakpoints.len() + 2);
    pts.push(lo);
    pts.push(hi);
    pts.extend(breakpoints.iter().copied().filter(|&p| p > lo && p < hi));
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    pts.dedup();
    // 2-point Gauss-Legendre nodes on [-1, 1]: ±1/sqrt(3), weight 1 each.
    let node = 1.0 / 3f64.sqrt();
    let mut total = 0.0;
    for w in pts.windows(2) {
        let (a, c) = (w[0], w[1]);
        let h = (c - a) / refine as f64;
        for k in 0..refine {
            let x0 = a + k as f64 * h;
            let mid = x0 + 0.5 * h;
            let half = 0.5 * h;
            total += half * (f(mid - half * node) + f(mid + half * node));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_basic_cases() {
        assert_eq!(interval_overlap(0.0, 1.0, 0.5, 2.0), 0.5);
        assert_eq!(interval_overlap(0.0, 1.0, 2.0, 3.0), 0.0);
        assert_eq!(interval_overlap(0.0, 1.0, -1.0, 2.0), 1.0);
        assert_eq!(interval_overlap(0.0, 1.0, 0.25, 0.75), 0.5);
    }

    #[test]
    fn overlap_integral_fully_inside() {
        // If [v-b, v+b] stays strictly inside [l, h] for all v in range, the
        // overlap is the constant 2b.
        let got = integral_of_interval_overlap(0.4, 0.6, 0.1, 0.0, 1.0);
        let expected = 0.2 * 0.2; // width 0.2 times constant 2b = 0.2
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn overlap_integral_disjoint() {
        assert_eq!(integral_of_interval_overlap(0.0, 0.1, 0.05, 0.5, 0.6), 0.0);
    }

    #[test]
    fn overlap_integral_matches_brute_force() {
        // Compare against a fine Riemann sum across a mix of geometries.
        let cases = [
            (0.0, 1.0, 0.3, 0.2, 0.7),
            (-0.5, 0.5, 0.25, 0.0, 0.1),
            (0.2, 0.9, 0.05, 0.15, 0.95),
            (0.0, 0.2, 0.5, -0.4, 0.4),
        ];
        for &(vlo, vhi, b, l, h) in &cases {
            let exact = integral_of_interval_overlap(vlo, vhi, b, l, h);
            let n = 200_000;
            let dx = (vhi - vlo) / n as f64;
            let mut brute = 0.0;
            for k in 0..n {
                let v = vlo + (k as f64 + 0.5) * dx;
                brute += interval_overlap(v - b, v + b, l, h) * dx;
            }
            assert!(
                (exact - brute).abs() < 1e-6,
                "case {vlo},{vhi},{b},{l},{h}: exact={exact} brute={brute}"
            );
        }
    }

    #[test]
    fn overlap_integral_symmetric_under_reflection() {
        // Reflecting both the v-range and the bucket about 0.5 must preserve
        // the integral.
        let a = integral_of_interval_overlap(0.1, 0.3, 0.2, 0.6, 0.8);
        let b = integral_of_interval_overlap(0.7, 0.9, 0.2, 0.2, 0.4);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gauss_exact_for_cubics() {
        let f = |x: f64| 4.0 * x * x * x + 3.0 * x * x - 2.0 * x + 1.0;
        // ∫0^2 = [x^4 + x^3 - x^2 + x] = 16 + 8 - 4 + 2 = 22.
        let got = integrate_with_breakpoints(f, &[0.7, 1.3], 0.0, 2.0, 1);
        assert!((got - 22.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_handles_kinked_functions_with_breakpoints() {
        // |x| on [-1, 1] is exactly integrable if we split at 0.
        let f = |x: f64| x.abs();
        let got = integrate_with_breakpoints(f, &[0.0], -1.0, 1.0, 1);
        assert!((got - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_handles_jump_discontinuities_at_breakpoints() {
        // A step function with the jump placed exactly on a breakpoint:
        // interior Gauss nodes never sample the boundary value.
        let f = |x: f64| if x < 0.5 { 2.0 } else { 7.0 };
        let got = integrate_with_breakpoints(f, &[0.5], 0.0, 1.0, 1);
        assert!((got - (2.0 * 0.5 + 7.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_or_inverted_ranges_integrate_to_zero() {
        assert_eq!(integral_of_interval_overlap(1.0, 0.0, 0.1, 0.0, 1.0), 0.0);
        assert_eq!(integrate_with_breakpoints(|x| x, &[], 2.0, 2.0, 4), 0.0);
    }
}
