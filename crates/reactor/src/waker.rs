//! Cross-thread reactor wakeups over an eventfd.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;

/// A nonblocking eventfd another thread writes to nudge a sleeping
/// reactor out of `epoll_wait` — completions arriving from an absorber,
/// new connections from the acceptor, shutdown.
///
/// Register [`Waker::fd`] level-triggered under a reserved token; when
/// that token shows up in a wait, call [`Waker::drain`] before handling
/// the work the wakeup advertised (drain-then-check, so a wake posted
/// mid-drain still leaves the fd readable for the next wait).
///
/// `Send + Sync`: [`Waker::wake`] is a single atomic 8-byte eventfd
/// write, safe from any thread. Wakes coalesce — the eventfd is a
/// counter, so N wakes before a drain produce one readable edge, which
/// is exactly what a "check your mailboxes" signal wants.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// A fresh eventfd waker (`EFD_CLOEXEC | EFD_NONBLOCK`).
    pub fn new() -> io::Result<Self> {
        Ok(Waker {
            fd: sys::eventfd()?,
        })
    }

    /// The fd to register (level-triggered, readable) in the reactor's
    /// epoll set.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Nudges the owning reactor. Never blocks; an unconsumed counter at
    /// `u64::MAX - 1` (unreachable in practice) would make the kernel
    /// return `EAGAIN`, which is treated as "already plenty awake".
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = sys::write(self.fd, &one);
    }

    /// Consumes pending wakeups so the next `epoll_wait` sleeps again.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        loop {
            match sys::read(self.fd, &mut buf) {
                Ok(_) => continue,
                Err(e) if e.raw_os_error() == Some(sys::EAGAIN) => return,
                Err(_) => return,
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

// SAFETY: eventfd reads/writes are atomic kernel operations on an
// integer handle.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}
