#!/usr/bin/env bash
# Offline documentation gate, run in CI (docs job):
#
#   1. LINK CHECK — every relative markdown link in README.md and
#      docs/*.md must point at a file (or file#anchor) that exists in
#      the repository. External http(s) links are skipped: the gate is
#      offline by design.
#   2. COMMAND CHECK — every fenced ```sh block immediately preceded by
#      an `<!-- check:exec -->` marker is executed, each in its own
#      scratch directory with the freshly built `ldp-collector` on PATH
#      and `set -euo pipefail` in force. A block that exits non-zero
#      fails the gate, so the handbook's examples cannot rot.
#
# Usage:  scripts/check_docs.sh [--links-only]
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

DOCS=(README.md docs/*.md)
FAIL=0

# ---------------------------------------------------------------- links
echo "== link check =="
for doc in "${DOCS[@]}"; do
  dir="$(dirname "$doc")"
  # Extract inline markdown link targets: [text](target)
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # offline gate
      '#'*) continue ;;                         # same-page anchor
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$ROOT/$path" ]; then
      echo "BROKEN LINK in $doc: ($target)"
      FAIL=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done
[ "$FAIL" -eq 0 ] && echo "links ok"

if [ "${1:-}" = "--links-only" ]; then
  exit "$FAIL"
fi

# ------------------------------------------------------------- commands
echo "== command check =="
cargo build -q -p ldp-collector -p ldp-loadgen
export PATH="$ROOT/target/debug:$PATH"
command -v ldp-collector >/dev/null
command -v ldp-loadgen >/dev/null

SCRATCH_BASE="$(mktemp -d)"
trap 'rm -rf "$SCRATCH_BASE"' EXIT

for doc in "${DOCS[@]}"; do
  block_idx=0
  # Pull out each exec-marked ```sh block with awk: marker line, then
  # the fence, then lines until the closing fence.
  awk -v out="$SCRATCH_BASE/$(basename "$doc")." '
    /<!-- check:exec -->/ { armed = 1; next }
    armed && /^```sh$/    { in_block = 1; armed = 0; n += 1; next }
    armed && !/^[[:space:]]*$/ { armed = 0 }
    in_block && /^```$/   { in_block = 0; next }
    in_block              { print > (out n ".sh") }
  ' "$doc"
  for script in "$SCRATCH_BASE/$(basename "$doc")."*.sh; do
    [ -e "$script" ] || continue
    block_idx=$((block_idx + 1))
    workdir="$(mktemp -d "$SCRATCH_BASE/run.XXXXXX")"
    echo "-- $doc block $block_idx"
    if ! (cd "$workdir" && bash -euo pipefail "$script"); then
      echo "COMMAND BLOCK FAILED: $doc block $block_idx ($script)"
      FAIL=1
    fi
    rm -f "$script"
  done
done

if [ "$FAIL" -eq 0 ]; then
  echo "docs ok"
fi
exit "$FAIL"
