//! Error type for utility metrics.

use std::fmt;

/// Errors produced when evaluating metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// The two distributions have different granularities.
    GranularityMismatch {
        /// Bucket count of the reference distribution.
        truth: usize,
        /// Bucket count of the estimate.
        estimate: usize,
    },
    /// A metric parameter was invalid (range size, quantile levels, …).
    InvalidParameter(String),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::GranularityMismatch { truth, estimate } => write!(
                f,
                "granularity mismatch: truth has {truth} buckets, estimate {estimate}"
            ),
            MetricError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MetricError::GranularityMismatch {
            truth: 256,
            estimate: 1024,
        };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("1024"));
    }
}
