//! The length-delimited socket ingestion loop.
//!
//! The wire between a report forwarder and the collector is deliberately
//! minimal — one TCP connection carrying framed batches of wire-report
//! lines:
//!
//! ```text
//! frame     = length payload
//! length    = u32, big endian, number of payload bytes
//! payload   = UTF-8 text, newline-separated WireReport lines
//! ```
//!
//! A frame with `length = 0` ends the stream. After every frame the
//! collector answers one status byte: `+` (batch absorbed, snapshot
//! policy applied) or `-` (batch rejected — the connection closes and
//! **none** of the frame's reports were absorbed, so the forwarder can
//! retry or quarantine the batch without double-count risk). The
//! normative spec lives in `docs/WIRE_FORMAT.md`; retry semantics are
//! discussed in `docs/OPERATIONS.md`.
//!
//! # Sequenced sessions (exactly-once)
//!
//! A session that opens with a hello frame (`crate::protocol`) upgrades
//! itself from at-least-once to exactly-once: every data frame carries a
//! sequence number, the absorber keeps a per-session dedup cursor that is
//! snapshotted *with* the state it vouches for, and a replayed frame —
//! after a reconnect or a collector restart — acks `+` idempotently
//! instead of double-counting. Bare sessions keep the original semantics
//! untouched. The end-of-stream frame of a sequenced session is acked
//! only after the final snapshot is durable, so a client that saw the
//! closing `+` can retire its replay buffer for good.
//!
//! # Fault injection
//!
//! The seams of this pipeline carry named failpoints (`crate::faults`):
//! `frame-read`, `decode`, `commit-push`, and `ack-write` here, plus
//! `snap-write`/`snap-rename` in `crate::io`. They are inert unless a
//! schedule is armed (`LDP_FAULTS`); the chaos suite drives them to prove
//! the exactly-once claim under crash, torn-write, and disconnect
//! schedules.
//!
//! # The concurrent serve path
//!
//! [`serve`] runs many framed sessions at once without giving up any of
//! the single-session guarantees, by splitting the work into three
//! stages (diagrammed in `docs/ARCHITECTURE.md`):
//!
//! 1. **decode** — one handler thread per connection reads frames and
//!    runs the session's [`BatchDecoder`]: parse, validate, and
//!    pre-absorb into a private shard state. Malformed frames are
//!    rejected *here* (`-` ack) and never reach the shared window.
//! 2. **absorb** — prepared batches flow through a bounded queue
//!    ([`ldp_pool::chan`], blocking `push` = backpressure to the TCP
//!    peers) into a single absorber that owns the session; state merges
//!    stay serialized, so the final window is bit-identical to a
//!    single-connection ingest of the concatenated frames. The handler
//!    sends its `+` ack only after the absorber commits.
//! 3. **snapshot** — on each cadence crossing the absorber *publishes*
//!    the rendered snapshot to a latest-wins
//!    [`ldp_core::snapshot::SnapshotSpool`]; a dedicated
//!    writer thread does the fsync-and-rename (with `--keep N`
//!    rotation) off the hot path, so snapshot writes never stall acks.
//!
//! # Overload safety
//!
//! A collector sized for millions of users must **shed** load it cannot
//! absorb, not queue it until memory or latency explodes. Four defenses
//! stack on the pipeline, each answering `!busy <retry-ms>`
//! ([`protocol::encode_busy`]) — the transient verdict distinct from the
//! permanent `-` reject, always sent *before* anything was absorbed so a
//! retry is safe for bare and sequenced sessions alike:
//!
//! - **admission control** — a connection beyond
//!   [`ServeOptions::max_connections`], or arriving after
//!   [`ServeOptions::report_quota`] filled the window, is answered busy
//!   and closed at accept instead of waiting invisibly in the backlog;
//! - **rate limiting** — each connection charges its frames (by report
//!   count) against a [`crate::limit::TokenBucket`] capped at
//!   [`ServeOptions::max_rps_per_conn`]; an over-rate frame is shed
//!   mid-stream (the connection stays open, the client re-sends);
//! - **byte budgets** — [`ServeOptions::max_frame_bytes`] rejects
//!   oversized length headers before allocating, and the commit queue is
//!   byte-weighted ([`ldp_pool::chan::bounded_weighted`]) so
//!   [`ServeOptions::memory_budget_bytes`] caps queued payloads *plus*
//!   in-flight decode buffers (reserved before allocation);
//! - **eviction** — a peer that stops draining acks past
//!   [`ServeOptions::ack_deadline`] is disconnected, freeing its slot.
//!
//! A **supervisor** completes the story: the snapshot writer restarts
//! itself after a panic (bounded retries), and an absorber panic quiesces
//! the loop, attempts a final durable snapshot, and surfaces
//! [`CollectorError::Panicked`] — the serve path fails loudly, never as a
//! silent wedge.

use crate::error::CollectorError;
use crate::faults;
use crate::io::write_snapshot_rotating;
use crate::limit::TokenBucket;
use crate::protocol;
use crate::session::{BatchDecoder, CollectorSession, PreparedBatch};
use ldp_core::snapshot::SnapshotSpool;
use ldp_pool::chan::{bounded, bounded_weighted, Sender};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default cap on a single frame's payload ([`ServeOptions::max_frame_bytes`]):
/// refuse absurd frames instead of attempting a pathological allocation
/// (a 64 MiB frame at ~20 bytes/report is ≈3M reports, far beyond any
/// sane batch).
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// How many consecutive panics the snapshot-writer supervisor tolerates
/// before declaring the stage dead and winding the serve loop down.
const MAX_WRITER_RESTARTS: u64 = 3;

/// How long a blocking read waits before re-checking the shutdown flag —
/// the granularity of "shutdown is checked between frames".
pub(crate) const READ_TICK: Duration = Duration::from_millis(100);

/// How long the acceptor sleeps between polls of a quiet listen socket.
pub(crate) const ACCEPT_TICK: Duration = Duration::from_millis(20);

/// Longest the acceptor sleeps after a transient accept failure
/// (fd exhaustion). The backoff doubles from [`ACCEPT_TICK`] up to this
/// cap and resets on the next successful accept.
pub(crate) const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Once shutdown is requested, how many silent read ticks a handler
/// tolerates mid-frame before abandoning the stalled peer (~5 s).
pub(crate) const SHUTDOWN_GRACE_TICKS: u32 = 50;

/// When (and where) the ingestion loop persists the window.
#[derive(Debug, Clone, Default)]
pub struct SnapshotPolicy {
    /// Snapshot file path; `None` disables persistence.
    pub path: Option<PathBuf>,
    /// Snapshot after every `every` absorbed reports (0 = only at
    /// end-of-stream).
    pub every: u64,
    /// Rotated previous generations to keep (`<path>.1` newest; 0 = no
    /// rotation).
    pub keep: u64,
}

impl SnapshotPolicy {
    /// Whether a batch that moved the count from `before` to `after`
    /// crossed a cadence boundary — the one cadence rule, shared by the
    /// serial loop, the concurrent absorber, and the `ingest` subcommand.
    #[must_use]
    pub fn due(&self, before: u64, after: u64) -> bool {
        self.path.is_some() && self.every > 0 && after / self.every > before / self.every
    }

    /// Persists rendered snapshot text under the policy's path and
    /// rotation setting. No-op without a path.
    pub fn persist(&self, text: &str) -> Result<(), CollectorError> {
        match &self.path {
            Some(path) => write_snapshot_rotating(path, text, self.keep),
            None => Ok(()),
        }
    }

    /// Applies the policy after a batch: persists when the absorbed count
    /// crossed an `every` boundary (or unconditionally at `force`).
    /// `before` is the session's count when the batch started.
    pub fn apply(
        &self,
        session: &dyn CollectorSession,
        before: u64,
        force: bool,
    ) -> Result<(), CollectorError> {
        if self.path.is_some() && (force || self.due(before, session.count())) {
            self.persist(&session.snapshot_text())?;
        }
        Ok(())
    }
}

/// Writes one frame (length prefix + payload) to `stream`.
pub fn write_frame(stream: &mut TcpStream, payload: &str) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload.as_bytes())
}

/// Reads one frame; `Ok(None)` is the end-of-stream frame (`length = 0`).
/// Frames above [`DEFAULT_MAX_FRAME_BYTES`] are refused; use
/// [`read_frame_capped`] to choose the cap.
pub fn read_frame(stream: &mut TcpStream) -> Result<Option<String>, CollectorError> {
    read_frame_capped(stream, DEFAULT_MAX_FRAME_BYTES)
}

/// [`read_frame`] with an explicit frame-size cap: an oversized length
/// header is rejected **before** the payload buffer is allocated, so a
/// hostile or corrupted length word can never trigger the allocation it
/// names.
pub fn read_frame_capped(
    stream: &mut TcpStream,
    max_frame_bytes: u32,
) -> Result<Option<String>, CollectorError> {
    let mut len_bytes = [0u8; 4];
    stream
        .read_exact(&mut len_bytes)
        .map_err(|e| CollectorError::Protocol(format!("reading frame length: {e}")))?;
    let len = u32::from_be_bytes(len_bytes);
    if len == 0 {
        return Ok(None);
    }
    if len > max_frame_bytes {
        return Err(CollectorError::Protocol(format!(
            "frame of {len} bytes exceeds the {max_frame_bytes}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    stream
        .read_exact(&mut payload)
        .map_err(|e| CollectorError::Protocol(format!("reading {len}-byte frame: {e}")))?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| CollectorError::Protocol(format!("frame is not UTF-8: {e}")))
}

/// Runs the ingestion loop over one accepted connection: absorb each
/// frame (acking `+`/`-`), snapshot on the policy's cadence, and on the
/// end-of-stream frame write a final snapshot and return the total
/// absorbed-report count.
///
/// A rejected frame (`-` ack) absorbs nothing — [`CollectorSession::ingest_text`]
/// is all-or-nothing — and ends the connection with the window intact, so
/// a subsequent connection (or file replay) can continue it.
///
/// Speaks both session flavors: a first frame that is a hello
/// (`crate::protocol`) upgrades the connection to the sequenced
/// exactly-once protocol (dedup against the session's persisted cursor);
/// any other first frame keeps the bare at-least-once semantics. This is
/// the serial engine; everything here is synchronous, so the sequenced
/// "durable before the closing ack" guarantee holds by construction.
pub fn serve_connection(
    stream: &mut TcpStream,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
) -> Result<u64, CollectorError> {
    serve_connection_capped(stream, session, policy, DEFAULT_MAX_FRAME_BYTES)
}

/// [`serve_connection`] with an explicit `--max-frame-bytes` cap — the
/// serial engine's half of the frame-size defense (the concurrent engine
/// takes the same cap through [`ServeOptions::max_frame_bytes`]).
pub fn serve_connection_capped(
    stream: &mut TcpStream,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
    max_frame_bytes: u32,
) -> Result<u64, CollectorError> {
    let mut first = true;
    let mut sequenced: Option<String> = None;
    loop {
        match read_frame_capped(stream, max_frame_bytes) {
            Ok(Some(payload)) => {
                if std::mem::take(&mut first) && protocol::is_hello(&payload) {
                    let hello = match protocol::parse_hello(&payload) {
                        Ok(h) => h,
                        Err(e) => {
                            let _ = stream.write_all(b"-");
                            return Err(e);
                        }
                    };
                    if let Some(name) = hello.window.as_deref().filter(|w| *w != "default") {
                        let _ = stream.write_all(b"-");
                        return Err(CollectorError::Protocol(format!(
                            "hello names unknown window {name:?} (serving: default)"
                        )));
                    }
                    let cursor = session.session_cursor(&hello.session);
                    if hello.horizon > cursor {
                        let _ = stream.write_all(b"-");
                        return Err(CollectorError::Protocol(format!(
                            "session {:?}: client replay horizon {} is beyond the collector \
                             cursor {cursor} — the missing frames cannot be recovered",
                            hello.session, hello.horizon
                        )));
                    }
                    stream
                        .write_all(&protocol::encode_hello_ack(cursor))
                        .map_err(|e| CollectorError::Io(format!("writing hello ack: {e}")))?;
                    sequenced = Some(hello.session);
                    continue;
                }
                let before = session.count();
                let outcome = match &sequenced {
                    None => session.ingest_text(&payload).map(|_| ()),
                    Some(id) => protocol::split_seq_frame(&payload).and_then(|(seq, body)| {
                        let cursor = session.session_cursor(id);
                        if seq < cursor {
                            // A replay of an already-committed frame:
                            // idempotent success, nothing absorbed.
                            Ok(())
                        } else if seq > cursor {
                            Err(CollectorError::Protocol(format!(
                                "session {id:?}: frame seq {seq} skips ahead of cursor {cursor}"
                            )))
                        } else {
                            session.ingest_text(body)?;
                            session.set_session_cursor(id, seq + 1);
                            Ok(())
                        }
                    }),
                };
                match outcome {
                    Ok(()) => {
                        policy.apply(session, before, false)?;
                        let _ = stream.write_all(b"+");
                    }
                    Err(e) => {
                        let _ = stream.write_all(b"-");
                        return Err(e);
                    }
                }
            }
            Ok(None) => {
                policy.apply(session, session.count(), true)?;
                let _ = stream.write_all(b"+");
                return Ok(session.count());
            }
            Err(e) => return Err(e),
        }
    }
}

/// Accepts one connection on `listener` and runs [`serve_connection`].
///
/// This is the single-session engine: it blocks on exactly one accept
/// and returns when that stream ends. It is kept as a documented test
/// helper (and behind the `serve --serial` flag) — production serving
/// goes through [`serve`], which runs many sessions concurrently.
pub fn serve_once(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
) -> Result<u64, CollectorError> {
    serve_once_capped(listener, session, policy, DEFAULT_MAX_FRAME_BYTES)
}

/// [`serve_once`] with an explicit frame-size cap (`serve --serial
/// --max-frame-bytes`).
pub fn serve_once_capped(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
    max_frame_bytes: u32,
) -> Result<u64, CollectorError> {
    let (mut stream, _addr) = listener
        .accept()
        .map_err(|e| CollectorError::Io(format!("accept: {e}")))?;
    serve_connection_capped(&mut stream, session, policy, max_frame_bytes)
}

/// Tuning for the concurrent [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent connection cap. A connection arriving while every slot
    /// is taken is **shed at accept** with `!busy <retry-ms>` and closed —
    /// explicit backpressure the client can act on, instead of invisible
    /// minutes in the TCP backlog. Nothing of a shed connection is ever
    /// absorbed, so retrying is always safe.
    pub max_connections: usize,
    /// Total sessions to accept before returning (0 = keep serving until
    /// [`ServeOptions::shutdown`] is raised).
    pub connections: u64,
    /// Capacity of the bounded decode→absorb queue. When the absorber
    /// falls behind, handlers block here (and their peers' acks wait) —
    /// the memory bound on in-flight work.
    pub queue_depth: usize,
    /// Cooperative shutdown flag: raise it (from a signal watcher, a
    /// shutdown file, a test) and the loop stops accepting, lets in-flight
    /// frames commit, checks the flag between frames on every open
    /// connection, and returns with a final snapshot written.
    pub shutdown: Arc<AtomicBool>,
    /// Disconnect a peer that sends nothing for this long between frames
    /// (`None` = wait forever). A stalled peer otherwise holds one of the
    /// `max_connections` permits indefinitely and can wedge the fleet;
    /// with a timeout it is dropped and counted in
    /// [`ServeSummary::idle_disconnects`]. Mid-frame stalls are not
    /// affected (a slow frame is backpressure, not idleness).
    pub idle_timeout: Option<Duration>,
    /// Largest accepted frame payload in bytes. An oversized length
    /// header is rejected (`-` ack) **before** its allocation and counted
    /// in [`ServeSummary::oversized_frames`].
    pub max_frame_bytes: u32,
    /// Per-connection rate cap in reports per second (`0.0` = unlimited).
    /// Each connection owns a [`TokenBucket`] with `burst = rate`; an
    /// over-rate frame is shed with `!busy` (nothing absorbed, connection
    /// stays open) and counted in [`ServeSummary::rate_sheds`].
    pub max_rps_per_conn: f64,
    /// Byte budget for the decode→absorb pipeline (`0` = unbounded):
    /// queued frame payloads **plus** in-flight decode buffers, which are
    /// charged against the budget before they are allocated. Handlers
    /// block (backpressure) when the budget is exhausted; the measured
    /// high-water mark lands in [`ServeSummary::peak_queue_bytes`].
    pub memory_budget_bytes: usize,
    /// Absorbed-report quota for this window (`0` = unlimited). Once the
    /// session count reaches it, *new* connections are shed with `!busy`
    /// at accept (counted in [`ServeSummary::quota_sheds`]); already
    /// admitted sessions finish normally.
    pub report_quota: u64,
    /// The retry hint carried by admission/quota `!busy` responses.
    pub busy_retry: Duration,
    /// How long an ack write may block before the peer is declared a slow
    /// consumer and **evicted** (`None` = wait forever). The commit the
    /// ack reported stays absorbed — a sequenced client re-learns it from
    /// the cursor at its next hello, exactly like an ack lost to a crash.
    pub ack_deadline: Option<Duration>,
    /// Run the legacy thread-per-connection engine instead of the epoll
    /// reactor (`serve --threads-per-conn`). The default engine runs
    /// [`ServeOptions::reactor_threads`] nonblocking reactor threads and
    /// multiplexes every connection across them; this escape hatch keeps
    /// the one-thread-per-session engine available for debugging and for
    /// platforms `ldp-reactor` does not build on. The
    /// `LDP_SERVE_ENGINE` environment variable (`reactor` / `threaded`)
    /// overrides this flag — the CI compat lanes use it to run the whole
    /// suite under either engine without code changes.
    pub threads_per_conn: bool,
    /// Reactor threads for the default engine (`0` = the shared pool
    /// sizing, [`ldp_pool::configured_threads`]). Each thread owns an
    /// epoll instance and a share of the connections; see
    /// `docs/OPERATIONS.md` ("Scaling the listener") for sizing.
    pub reactor_threads: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_connections: 8,
            connections: 0,
            queue_depth: 32,
            shutdown: Arc::new(AtomicBool::new(false)),
            idle_timeout: None,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_rps_per_conn: 0.0,
            memory_budget_bytes: 0,
            report_quota: 0,
            busy_retry: Duration::from_millis(200),
            ack_deadline: None,
            threads_per_conn: false,
            reactor_threads: 0,
        }
    }
}

/// What a completed [`serve`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions that reached a clean end-of-stream frame.
    pub completed: u64,
    /// Sessions that ended in a rejected frame, a protocol violation, or
    /// an abrupt disconnect (the window itself is always intact).
    pub failed: u64,
    /// Reports absorbed by this call.
    pub reports: u64,
    /// Cadence snapshots that were superseded before the writer persisted
    /// them (a writer-falling-behind signal; the latest always lands).
    pub snapshots_superseded: u64,
    /// Replayed sequenced frames acked `+` without absorbing (each one is
    /// a double-count that the dedup cursor prevented).
    pub duplicates_suppressed: u64,
    /// Hello frames that resumed a session id this window had already
    /// committed frames for (cursor > 0 at hello time).
    pub sessions_resumed: u64,
    /// Peers disconnected by [`ServeOptions::idle_timeout`].
    pub idle_disconnects: u64,
    /// Connections shed with `!busy` at accept because every
    /// [`ServeOptions::max_connections`] slot was taken.
    pub admission_sheds: u64,
    /// Connections shed with `!busy` at accept because
    /// [`ServeOptions::report_quota`] was already met.
    pub quota_sheds: u64,
    /// Frames shed mid-stream with `!busy` by the per-connection
    /// [`ServeOptions::max_rps_per_conn`] token bucket (nothing absorbed;
    /// the client re-sends).
    pub rate_sheds: u64,
    /// Frames rejected because their length header exceeded
    /// [`ServeOptions::max_frame_bytes`] — refused before allocation.
    pub oversized_frames: u64,
    /// Slow consumers disconnected by [`ServeOptions::ack_deadline`]
    /// (plus any `ack-evict` faults the chaos schedule injected).
    pub evictions: u64,
    /// Times the supervisor restarted a panicked snapshot-writer stage.
    pub supervisor_restarts: u64,
    /// High-water mark, in bytes, of the decode→absorb pipeline's charged
    /// memory (queued payloads + in-flight decode buffers) — compare
    /// against [`ServeOptions::memory_budget_bytes`] to verify a sizing
    /// plan.
    pub peak_queue_bytes: u64,
    /// Transient accept-loop failures survived with backoff — fd
    /// exhaustion (`EMFILE`/`ENFILE`) and injected `accept` faults. The
    /// listener keeps listening through these; a nonzero count is the
    /// operator's cue to raise `ulimit -n` (see `docs/OPERATIONS.md`).
    pub accept_errors: u64,
    /// Faults fired by the `crate::faults` schedule during this call
    /// (always 0 unless a schedule was armed).
    pub faults_injected: u64,
    /// Per-window `(name, reports absorbed)` when this serve ran with
    /// routed windows ([`serve_routed`]); empty for a single-window
    /// serve. [`ServeSummary::reports`] is the total across windows.
    pub window_reports: Vec<(String, u64)>,
    /// The last per-session error, for operator logs.
    pub last_session_error: Option<String>,
}

/// Renders a [`ServeSummary`] as one stable JSON object (the
/// `serve --summary-json <path>` artifact): every counter, the
/// per-window report counts as a `"window_reports"` object, and the last
/// session error (or `null`). Written by hand because the workspace
/// vendors no JSON serializer — the shape is pinned by a unit test.
#[must_use]
pub fn summary_json(summary: &ServeSummary) -> String {
    fn escape(text: &str) -> String {
        let mut out = String::with_capacity(text.len() + 2);
        for c in text.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut json = String::from("{");
    let counters: [(&str, u64); 17] = [
        ("accepted", summary.accepted),
        ("completed", summary.completed),
        ("failed", summary.failed),
        ("reports", summary.reports),
        ("snapshots_superseded", summary.snapshots_superseded),
        ("duplicates_suppressed", summary.duplicates_suppressed),
        ("sessions_resumed", summary.sessions_resumed),
        ("idle_disconnects", summary.idle_disconnects),
        ("admission_sheds", summary.admission_sheds),
        ("quota_sheds", summary.quota_sheds),
        ("rate_sheds", summary.rate_sheds),
        ("oversized_frames", summary.oversized_frames),
        ("evictions", summary.evictions),
        ("supervisor_restarts", summary.supervisor_restarts),
        ("peak_queue_bytes", summary.peak_queue_bytes),
        ("accept_errors", summary.accept_errors),
        ("faults_injected", summary.faults_injected),
    ];
    for (key, value) in counters {
        json.push_str(&format!("\"{key}\":{value},"));
    }
    json.push_str("\"window_reports\":{");
    for (i, (name, reports)) in summary.window_reports.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{}\":{reports}", escape(name)));
    }
    json.push_str("},");
    match &summary.last_session_error {
        Some(msg) => json.push_str(&format!("\"last_session_error\":\"{}\"", escape(msg))),
        None => json.push_str("\"last_session_error\":null"),
    }
    json.push('}');
    json
}

/// How a sequenced session resumes, as the absorber reports it.
pub(crate) struct SessionResume {
    /// The next sequence number the window expects for the id.
    pub(crate) cursor: u64,
}

/// What the absorber did with a sequenced batch.
pub(crate) enum BatchOutcome {
    /// Committed; the cursor advanced.
    Absorbed,
    /// A replay of an already-committed sequence: acked, not absorbed.
    Duplicate,
}

/// The absorber's answer to one [`Commit`].
pub(crate) enum CommitReply {
    /// Answer to [`Commit::Hello`].
    Hello(SessionResume),
    /// Answer to [`Commit::Batch`].
    Batch(Result<BatchOutcome, CollectorError>),
    /// Answer to [`Commit::Flush`].
    Flush(Result<u64, CollectorError>),
}

/// The absorber's completion callback for one [`Commit`] — the seam that
/// lets both engines share one absorber: the threaded engine's callback
/// fills a oneshot channel its handler blocks on; the reactor engine's
/// posts to the owning reactor thread's mailbox and wakes it.
///
/// Dropping an unresolved `Done` fires it with `None` ("the absorber
/// stopped before answering") — a commit drained and dropped by a dying
/// queue can never strand its connection.
pub(crate) struct Done(Option<Box<dyn FnOnce(Option<CommitReply>) + Send>>);

impl Done {
    pub(crate) fn new(f: impl FnOnce(Option<CommitReply>) + Send + 'static) -> Done {
        Done(Some(Box::new(f)))
    }

    pub(crate) fn resolve(mut self, reply: CommitReply) {
        if let Some(f) = self.0.take() {
            f(Some(reply));
        }
    }
}

impl Drop for Done {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f(None);
        }
    }
}

/// One unit of work for the absorber.
pub(crate) enum Commit {
    /// A sequenced session's hello: resolve the dedup cursor (serialized
    /// with absorption, so the answer can never race a commit).
    Hello { session: String, done: Done },
    /// A decoded batch plus the completion the handler acks on. `seq` is
    /// the sequenced session's `(id, sequence)` — `None` for bare
    /// sessions.
    Batch {
        batch: PreparedBatch,
        seq: Option<(String, u64)>,
        done: Done,
    },
    /// A session's end-of-stream: publish a snapshot, ack the total.
    /// For a sequenced session the ack waits until the snapshot is
    /// durable — the client retires its replay buffer on this ack.
    Flush { sequenced: bool, done: Done },
}

/// What an interruptible frame read yielded.
enum FrameRead {
    /// A payload frame.
    Payload(String),
    /// The explicit `length = 0` end-of-stream frame.
    EndOfStream,
    /// The shutdown flag was raised at a frame boundary.
    ShutdownRequested,
    /// The peer closed the socket at a frame boundary (no end-of-stream
    /// frame).
    PeerClosed,
    /// The peer sent nothing for [`ServeOptions::idle_timeout`] at a
    /// frame boundary.
    IdleTimeout,
    /// The length header exceeded [`ServeOptions::max_frame_bytes`]; the
    /// payload was **not** read (and never allocated).
    Oversized(u32),
}

enum Fill {
    Full,
    Eof,
    Shutdown,
    Idle,
}

/// Reads exactly `buf.len()` bytes, waking every [`READ_TICK`] to check
/// `shutdown`. `at_boundary` marks the read that starts a frame: only
/// there may the read end early with `Eof`/`Shutdown`/`Idle` — mid-frame,
/// EOF is a protocol violation, idleness is tolerated (a slow frame is
/// backpressure), and shutdown waits for the frame to finish (bounded by
/// [`SHUTDOWN_GRACE_TICKS`] against a stalled peer).
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
    idle_timeout: Option<Duration>,
) -> Result<Fill, CollectorError> {
    let mut filled = 0;
    let mut stalled_ticks = 0u32;
    let idle_deadline = idle_timeout
        .filter(|_| at_boundary)
        .map(|d| Instant::now() + d);
    while filled < buf.len() {
        if at_boundary && filled == 0 && shutdown.load(Ordering::SeqCst) {
            return Ok(Fill::Shutdown);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(Fill::Eof);
                }
                return Err(CollectorError::Protocol(format!(
                    "connection closed after {filled} of {} frame bytes",
                    buf.len()
                )));
            }
            Ok(n) => {
                filled += n;
                stalled_ticks = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if filled == 0 {
                    if let Some(deadline) = idle_deadline {
                        if Instant::now() >= deadline {
                            return Ok(Fill::Idle);
                        }
                    }
                }
                if shutdown.load(Ordering::SeqCst) && !(at_boundary && filled == 0) {
                    stalled_ticks += 1;
                    if stalled_ticks > SHUTDOWN_GRACE_TICKS {
                        return Err(CollectorError::Protocol(
                            "peer stalled mid-frame during shutdown".into(),
                        ));
                    }
                }
            }
            Err(e) => {
                return Err(CollectorError::Protocol(format!("reading frame: {e}")));
            }
        }
    }
    Ok(Fill::Full)
}

/// [`read_frame`] with cooperative shutdown and the idle clock: requires
/// the stream to have a read timeout set (the wake-up tick) and
/// distinguishes the clean frame-boundary endings from protocol
/// violations.
///
/// `before_alloc` runs between validating the length header and
/// allocating the payload buffer — the handler charges the frame's bytes
/// against the pipeline's memory budget there, so the budget covers the
/// decode buffer from the instant it exists.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    idle_timeout: Option<Duration>,
    max_frame_bytes: u32,
    before_alloc: &mut dyn FnMut(usize) -> Result<(), CollectorError>,
) -> Result<FrameRead, CollectorError> {
    if faults::hit("frame-read").is_some() {
        return Err(faults::error("frame-read"));
    }
    let mut len_bytes = [0u8; 4];
    match fill(stream, &mut len_bytes, shutdown, true, idle_timeout)? {
        Fill::Shutdown => return Ok(FrameRead::ShutdownRequested),
        Fill::Eof => return Ok(FrameRead::PeerClosed),
        Fill::Idle => return Ok(FrameRead::IdleTimeout),
        Fill::Full => {}
    }
    let len = u32::from_be_bytes(len_bytes);
    if len == 0 {
        return Ok(FrameRead::EndOfStream);
    }
    if len > max_frame_bytes {
        return Ok(FrameRead::Oversized(len));
    }
    before_alloc(len as usize)?;
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, shutdown, false, None)? {
        Fill::Full => {}
        // fill() never ends early off-boundary.
        Fill::Eof | Fill::Shutdown | Fill::Idle => unreachable!(),
    }
    String::from_utf8(payload)
        .map(FrameRead::Payload)
        .map_err(|e| CollectorError::Protocol(format!("frame is not UTF-8: {e}")))
}

/// How one concurrent session ended (errors are returned separately).
enum SessionEnd {
    /// Clean end-of-stream frame, final `+` sent.
    EndOfStream,
    /// Shutdown was requested between frames.
    Shutdown,
    /// The peer disconnected between frames without an end-of-stream.
    PeerClosed,
    /// The peer idled past [`ServeOptions::idle_timeout`] between frames.
    Idle,
    /// The peer stopped draining acks past [`ServeOptions::ack_deadline`]
    /// and was evicted (the committed state stands; only the ack was never
    /// delivered — the crash-window semantics sequenced sessions already
    /// handle).
    Evicted,
}

/// What writing a success ack did.
enum AckWrite {
    /// Delivered.
    Delivered,
    /// The write timed out against [`ServeOptions::ack_deadline`] (or the
    /// `ack-evict` failpoint simulated it): evict the slow consumer.
    Evict,
}

/// Writes a success ack through the `ack-write` failpoint — the canonical
/// crash window: the absorber has committed, the client has not heard.
/// With an [`ServeOptions::ack_deadline`] armed (as a socket write
/// timeout), a blocked write surfaces as [`AckWrite::Evict`] instead of
/// holding the handler slot forever.
fn write_success_ack(stream: &mut TcpStream, ack: &[u8]) -> Result<AckWrite, CollectorError> {
    if faults::hit("ack-write").is_some() {
        return Err(faults::error("ack-write"));
    }
    if faults::hit("ack-evict").is_some() {
        return Ok(AckWrite::Evict);
    }
    match stream.write_all(ack) {
        Ok(()) => Ok(AckWrite::Delivered),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(AckWrite::Evict)
        }
        Err(e) => Err(CollectorError::Io(format!("writing ack: {e}"))),
    }
}

/// The per-connection limits [`serve`] distills from its [`ServeOptions`].
struct ConnLimits {
    max_frame_bytes: u32,
    /// Reports/second cap for this connection's token bucket (`None` =
    /// unlimited).
    rate: Option<f64>,
    ack_deadline: Option<Duration>,
    idle_timeout: Option<Duration>,
}

/// The shed/evict tallies a handler reports into (a slice of the serve
/// loop's counter block).
struct ConnCounters<'a> {
    rate_sheds: &'a AtomicU64,
    oversized: &'a AtomicU64,
}

/// A byte-budget charge acquired before a payload allocation. Dropping
/// the guard releases the charge (every early-out path: hello frames,
/// rate sheds, decode failures, injected faults); [`ByteCharge::take`]
/// transfers it to the queued commit instead, where the receiver releases
/// it at pop.
struct ByteCharge<'a> {
    commits: &'a Sender<Commit>,
    bytes: usize,
}

impl ByteCharge<'_> {
    fn take(&mut self) -> usize {
        std::mem::take(&mut self.bytes)
    }
}

impl Drop for ByteCharge<'_> {
    fn drop(&mut self) {
        if self.bytes > 0 {
            self.commits.unreserve(self.bytes);
        }
    }
}

/// Writes a `!busy <retry-ms>` shed response. A peer too slow to take
/// even the shed (write timeout) is evicted rather than waited on.
fn write_busy(stream: &mut TcpStream, retry: Duration) -> Result<AckWrite, CollectorError> {
    let retry_ms = u32::try_from(retry.as_millis().max(1)).unwrap_or(u32::MAX);
    match stream.write_all(&protocol::encode_busy(retry_ms)) {
        Ok(()) => Ok(AckWrite::Delivered),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(AckWrite::Evict)
        }
        Err(e) => Err(CollectorError::Io(format!("writing busy shed: {e}"))),
    }
}

/// Best-effort `!busy` shed of a connection that was never admitted: tell
/// the peer when to retry, then close. Write errors are ignored — the
/// peer is being turned away either way, and a short write timeout keeps
/// a hostile peer from stalling the acceptor.
pub(crate) fn shed_at_accept(mut stream: TcpStream, retry: Duration) {
    let retry_ms = u32::try_from(retry.as_millis().max(1)).unwrap_or(u32::MAX);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(&protocol::encode_busy(retry_ms));
}

/// Whether an accept error is the process (`EMFILE`) or host (`ENFILE`)
/// running out of file descriptors — transient pressure the accept loop
/// must survive with backoff, never a reason to drop live sessions.
pub(crate) fn is_fd_exhaustion(e: &std::io::Error) -> bool {
    matches!(
        e.raw_os_error(),
        Some(23 /* ENFILE */) | Some(24 /* EMFILE */)
    )
}

/// Renders a caught panic payload for error reports (panics carry
/// `String` or `&str` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The counters and stages one window's absorber reports into — shared
/// between the threaded engine (one window) and the reactor engine (one
/// per routed window).
pub(crate) struct AbsorberShared<'a> {
    pub(crate) policy: &'a SnapshotPolicy,
    pub(crate) spool: &'a SnapshotSpool,
    pub(crate) duplicates: &'a AtomicU64,
    pub(crate) resumed: &'a AtomicU64,
    /// The window's running report count, published for the acceptor's
    /// quota check.
    pub(crate) absorbed_total: &'a AtomicU64,
}

/// Applies one [`Commit`] to the window — **the** serialization point:
/// cursor dedup, state merge, cadence publish, and durability waits all
/// happen here, in queue order, whichever engine queued the commit.
pub(crate) fn absorb_commit(
    session: &mut dyn CollectorSession,
    shared: &AbsorberShared<'_>,
    commit: Commit,
) {
    match commit {
        Commit::Hello { session: id, done } => {
            let cursor = session.session_cursor(&id);
            if cursor > 0 {
                shared.resumed.fetch_add(1, Ordering::SeqCst);
            }
            done.resolve(CommitReply::Hello(SessionResume { cursor }));
        }
        Commit::Batch { batch, seq, done } => {
            if faults::hit("absorb").is_some() {
                // The injected failure stands in for a bug in the merge
                // itself; with the `panic` action it exercises the
                // supervisor's containment.
                done.resolve(CommitReply::Batch(Err(faults::error("absorb"))));
                return;
            }
            let before = session.count();
            let result = match seq {
                None => session
                    .absorb_prepared(batch)
                    .map(|_| BatchOutcome::Absorbed),
                Some((id, n)) => {
                    let cursor = session.session_cursor(&id);
                    if n < cursor {
                        // Replay of a committed frame: the dedup cursor is
                        // exactly why this acks `+` without touching the
                        // window.
                        shared.duplicates.fetch_add(1, Ordering::SeqCst);
                        Ok(BatchOutcome::Duplicate)
                    } else if n > cursor {
                        Err(CollectorError::Protocol(format!(
                            "session {id:?}: frame seq {n} skips ahead of cursor {cursor}"
                        )))
                    } else {
                        session.absorb_prepared(batch).map(|_| {
                            session.set_session_cursor(&id, n + 1);
                            BatchOutcome::Absorbed
                        })
                    }
                }
            };
            if matches!(result, Ok(BatchOutcome::Absorbed)) {
                shared
                    .absorbed_total
                    .store(session.count(), Ordering::SeqCst);
                if shared.policy.due(before, session.count()) {
                    shared.spool.publish(session.snapshot_text());
                }
            }
            done.resolve(CommitReply::Batch(result));
        }
        Commit::Flush { sequenced, done } => {
            let result = if shared.policy.path.is_some() {
                let generation = shared.spool.publish(session.snapshot_text());
                if sequenced && !shared.spool.wait_written(generation) {
                    // The writer died: the cursor the client is about to
                    // trust was never persisted. Fail the flush so the
                    // client keeps its replay buffer.
                    Err(CollectorError::Io(
                        "the final session snapshot could not be persisted".into(),
                    ))
                } else {
                    Ok(session.count())
                }
            } else {
                Ok(session.count())
            };
            done.resolve(CommitReply::Flush(result));
        }
    }
}

/// One window's snapshot-writer stage: drain the spool, persist each
/// taken generation under the policy, retry a panicking persist in place
/// (bounded by [`MAX_WRITER_RESTARTS`]), and on giving up poison the
/// spool and raise shutdown so durability waiters fail instead of
/// hanging. Shared verbatim by both engines; the reactor engine runs one
/// per routed window.
pub(crate) fn run_writer(
    spool: &SnapshotSpool,
    policy: &SnapshotPolicy,
    writer_error: &Mutex<Option<CollectorError>>,
    shutdown: &AtomicBool,
    restarts: &AtomicU64,
) {
    let give_up = |e: CollectorError| {
        *writer_error.lock().expect("writer error lock") = Some(e);
        spool.poison();
        shutdown.store(true, Ordering::SeqCst);
    };
    'generations: while let Some((generation, text)) = spool.take_tagged() {
        loop {
            let attempt =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| policy.persist(&text)));
            match attempt {
                Ok(Ok(())) => {
                    spool.mark_written(generation);
                    continue 'generations;
                }
                Ok(Err(e)) => return give_up(e),
                Err(panic) => {
                    let nth = restarts.fetch_add(1, Ordering::SeqCst) + 1;
                    if nth >= MAX_WRITER_RESTARTS {
                        return give_up(CollectorError::Panicked(format!(
                            "snapshot writer panicked {nth} times; last: {}",
                            panic_message(panic.as_ref())
                        )));
                    }
                }
            }
        }
    }
}

/// One connection's serve loop: read a frame, decode it *on this thread*
/// via the shared [`BatchDecoder`], hand the prepared batch to the
/// absorber over the bounded queue, and ack `+` only after the absorber
/// commits. Decode failures ack `-` immediately — the absorber never
/// sees the frame, preserving atomic rejection.
///
/// A hello first frame switches the connection to the sequenced protocol:
/// the dedup cursor is resolved by the absorber (racing a commit is
/// impossible), the client's replay horizon is validated against it, and
/// every later frame must carry its `seq` line.
///
/// Overload defenses ([`ConnLimits`]): oversized length headers are
/// rejected before allocation; every payload's bytes are charged against
/// the pipeline budget before its buffer exists; over-rate frames are
/// shed with `!busy` (nothing absorbed — the peer re-sends the same
/// frame); ack writes past the deadline evict the slow consumer.
fn handle_connection(
    stream: &mut TcpStream,
    decoder: &dyn BatchDecoder,
    commits: &Sender<Commit>,
    shutdown: &AtomicBool,
    limits: &ConnLimits,
    counters: &ConnCounters<'_>,
) -> Result<SessionEnd, CollectorError> {
    stream
        .set_read_timeout(Some(READ_TICK))
        .map_err(|e| CollectorError::Io(format!("set_read_timeout: {e}")))?;
    if limits.ack_deadline.is_some() {
        stream
            .set_write_timeout(limits.ack_deadline)
            .map_err(|e| CollectorError::Io(format!("set_write_timeout: {e}")))?;
    }
    let mut bucket = limits
        .rate
        .map(|rate| TokenBucket::new(rate, rate, Instant::now()));
    let absorber_gone =
        || CollectorError::Io("the absorber stopped before the session ended".into());
    let mut first = true;
    let mut sequenced: Option<String> = None;
    loop {
        let mut reserved = 0usize;
        let read = {
            let mut before_alloc = |len: usize| {
                commits.reserve(len).map_err(|_| absorber_gone())?;
                reserved = len;
                Ok(())
            };
            read_frame_interruptible(
                stream,
                shutdown,
                limits.idle_timeout,
                limits.max_frame_bytes,
                &mut before_alloc,
            )
        };
        // From here to queue handoff the frame's bytes are charged; the
        // guard releases them on every path that doesn't push a batch.
        let mut charge = ByteCharge {
            commits,
            bytes: reserved,
        };
        match read? {
            FrameRead::Payload(text) => {
                if std::mem::take(&mut first) && protocol::is_hello(&text) {
                    let hello = match protocol::parse_hello(&text) {
                        Ok(h) => h,
                        Err(e) => {
                            let _ = stream.write_all(b"-");
                            return Err(e);
                        }
                    };
                    if let Some(name) = hello.window.as_deref().filter(|w| *w != "default") {
                        let _ = stream.write_all(b"-");
                        return Err(CollectorError::Protocol(format!(
                            "hello names unknown window {name:?} (serving: default)"
                        )));
                    }
                    let (ack_tx, ack_rx) = bounded::<Option<CommitReply>>(1);
                    let done = Done::new(move |reply| {
                        let _ = ack_tx.push(reply);
                    });
                    commits
                        .push(Commit::Hello {
                            session: hello.session.clone(),
                            done,
                        })
                        .map_err(|_| absorber_gone())?;
                    let resume = match ack_rx.pop().flatten() {
                        Some(CommitReply::Hello(resume)) => resume,
                        _ => return Err(absorber_gone()),
                    };
                    if hello.horizon > resume.cursor {
                        let _ = stream.write_all(b"-");
                        return Err(CollectorError::Protocol(format!(
                            "session {:?}: client replay horizon {} is beyond the collector \
                             cursor {} — the missing frames cannot be recovered",
                            hello.session, hello.horizon, resume.cursor
                        )));
                    }
                    match write_success_ack(stream, &protocol::encode_hello_ack(resume.cursor))? {
                        AckWrite::Delivered => {}
                        AckWrite::Evict => return Ok(SessionEnd::Evicted),
                    }
                    sequenced = Some(hello.session);
                    continue;
                }
                let (seq, body) = match &sequenced {
                    None => (None, text.as_str()),
                    Some(id) => match protocol::split_seq_frame(&text) {
                        Ok((n, body)) => (Some((id.clone(), n)), body),
                        Err(e) => {
                            let _ = stream.write_all(b"-");
                            return Err(e);
                        }
                    },
                };
                if let Some(bucket) = &mut bucket {
                    let cost = body.lines().filter(|l| !l.trim().is_empty()).count() as u64;
                    if let Err(wait) = bucket.admit_at(cost.max(1), Instant::now()) {
                        // Over rate: shed the frame untouched. The charge
                        // guard frees its bytes; the connection stays open
                        // and the peer re-sends this same frame after the
                        // hint — safe because nothing was absorbed.
                        counters.rate_sheds.fetch_add(1, Ordering::SeqCst);
                        match write_busy(stream, wait)? {
                            AckWrite::Delivered => continue,
                            AckWrite::Evict => return Ok(SessionEnd::Evicted),
                        }
                    }
                }
                if faults::hit("decode").is_some() {
                    let _ = stream.write_all(b"-");
                    return Err(faults::error("decode"));
                }
                let batch = match decoder.prepare(body) {
                    Ok(batch) => batch,
                    Err(e) => {
                        let _ = stream.write_all(b"-");
                        return Err(e);
                    }
                };
                if faults::hit("commit-push").is_some() {
                    return Err(faults::error("commit-push"));
                }
                let (ack_tx, ack_rx) = bounded::<Option<CommitReply>>(1);
                let done = Done::new(move |reply| {
                    let _ = ack_tx.push(reply);
                });
                let weight = charge.take();
                commits
                    .push_reserved(Commit::Batch { batch, seq, done }, weight)
                    .map_err(|_| absorber_gone())?;
                match ack_rx.pop().flatten() {
                    Some(CommitReply::Batch(Ok(_outcome))) => {
                        match write_success_ack(stream, b"+")? {
                            AckWrite::Delivered => {}
                            AckWrite::Evict => return Ok(SessionEnd::Evicted),
                        }
                    }
                    Some(CommitReply::Batch(Err(e))) => {
                        let _ = stream.write_all(b"-");
                        return Err(e);
                    }
                    _ => return Err(absorber_gone()),
                }
            }
            FrameRead::EndOfStream => {
                let (ack_tx, ack_rx) = bounded::<Option<CommitReply>>(1);
                let done = Done::new(move |reply| {
                    let _ = ack_tx.push(reply);
                });
                commits
                    .push(Commit::Flush {
                        sequenced: sequenced.is_some(),
                        done,
                    })
                    .map_err(|_| absorber_gone())?;
                match ack_rx.pop().flatten() {
                    Some(CommitReply::Flush(Ok(_))) => {
                        match write_success_ack(stream, b"+")? {
                            AckWrite::Delivered => {}
                            AckWrite::Evict => return Ok(SessionEnd::Evicted),
                        }
                        return Ok(SessionEnd::EndOfStream);
                    }
                    Some(CommitReply::Flush(Err(e))) => {
                        let _ = stream.write_all(b"-");
                        return Err(e);
                    }
                    _ => return Err(absorber_gone()),
                }
            }
            FrameRead::ShutdownRequested => return Ok(SessionEnd::Shutdown),
            FrameRead::PeerClosed => return Ok(SessionEnd::PeerClosed),
            FrameRead::IdleTimeout => return Ok(SessionEnd::Idle),
            FrameRead::Oversized(len) => {
                counters.oversized.fetch_add(1, Ordering::SeqCst);
                let _ = stream.write_all(b"-");
                return Err(CollectorError::Protocol(format!(
                    "frame of {len} bytes exceeds the {}-byte limit",
                    limits.max_frame_bytes
                )));
            }
        }
    }
}

/// A named estimation window served next to the default one by
/// [`serve_routed`]: its own session (mechanism + state), its own
/// snapshot policy, its own absorber/snapshot pipeline. A sequenced
/// client routes to it with the hello's `window <name>` line.
pub struct WindowRoute {
    /// The route name clients put on their hello's `window` line (same
    /// charset as session ids).
    pub name: String,
    /// The window's session — exclusively owned by its absorber while
    /// serve runs.
    pub session: Box<dyn CollectorSession>,
    /// When and where this window snapshots (independent of the default
    /// window's policy).
    pub policy: SnapshotPolicy,
}

/// Serves many concurrent framed TCP sessions — the `serve` subcommand's
/// engine dispatcher.
///
/// The default engine is the nonblocking **epoll reactor**
/// (`ldp-reactor`): [`ServeOptions::reactor_threads`] threads each own an
/// epoll instance and multiplex their share of the connections through
/// the resumable protocol machine ([`crate::machine`]), so thousands of
/// mostly-idle sessions cost file descriptors, not stacks. Set
/// [`ServeOptions::threads_per_conn`] (or `LDP_SERVE_ENGINE=threaded`)
/// for the legacy one-thread-per-session engine; `LDP_SERVE_ENGINE=reactor`
/// forces the reactor. Both engines share the same absorber, snapshot
/// writer, overload defenses, and failpoints — the whole chaos and stress
/// suite holds bit-identically under either.
///
/// The structure (see the module docs and `docs/ARCHITECTURE.md`): an
/// acceptor admits connections (shedding `!busy` beyond
/// `max_connections` or past the report quota, and surviving fd
/// exhaustion with backoff); per-connection decode charges payload bytes
/// against the pipeline budget and feeds prepared batches through the
/// byte-budgeted queue; a single absorber merges batches into the
/// session in queue order and publishes cadence snapshots to a
/// latest-wins spool; a writer service persists them (rotating per the
/// policy) off the hot path. A final snapshot is written synchronously
/// before returning.
///
/// Because every commit is an exact state merge, the final window is
/// **bit-identical** to a single-connection ingest of the same frames in
/// any order — the property the stress suite pins. Per-session failures
/// (rejected frames, protocol violations, disconnects, sheds, evictions)
/// are counted in the [`ServeSummary`], never fatal to the loop; `Err` is
/// reserved for collector-side failures (listener I/O, snapshot
/// persistence, a panicked stage).
///
/// # Supervision
///
/// The absorber runs under a supervisor: if it panics, the loop quiesces
/// (shutdown raised, every blocked handler fails fast), a final durable
/// snapshot covering **every acked frame** is still attempted, and serve
/// returns [`CollectorError::Panicked`] instead of wedging. A panicked
/// snapshot-writer stage is restarted in place a bounded number of times
/// (counted in [`ServeSummary::supervisor_restarts`]) before the window
/// gives up
/// loudly — the generation it was persisting is retried, never dropped,
/// so durability waiters cannot hang.
pub fn serve(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
    options: &ServeOptions,
) -> Result<ServeSummary, CollectorError> {
    serve_routed(listener, session, policy, options, &mut [])
}

/// [`serve`] with additional named windows: a hello frame carrying
/// `window <name>` routes its whole session to that window's own
/// absorber/snapshot pipeline; sessions without the line (and bare
/// at-least-once sessions) land in the default window. Requires the
/// reactor engine — the thread-per-connection escape hatch predates
/// routing and refuses a routed configuration rather than silently
/// merging windows.
pub fn serve_routed(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
    options: &ServeOptions,
    windows: &mut [WindowRoute],
) -> Result<ServeSummary, CollectorError> {
    let threaded = match std::env::var("LDP_SERVE_ENGINE").as_deref() {
        Ok("threaded") => true,
        Ok("reactor") => false,
        Ok(other) => {
            return Err(CollectorError::Spec(format!(
                "LDP_SERVE_ENGINE must be \"reactor\" or \"threaded\", not {other:?}"
            )))
        }
        Err(_) => options.threads_per_conn,
    };
    if threaded {
        if !windows.is_empty() {
            return Err(CollectorError::Spec(
                "--window routing requires the reactor engine (drop --threads-per-conn)".into(),
            ));
        }
        return serve_threaded(listener, session, policy, options);
    }
    crate::reactor_serve::serve_reactor(listener, session, policy, options, windows)
}

/// The legacy engine: one blocking handler thread per connection. Kept
/// behind `serve --threads-per-conn` / `LDP_SERVE_ENGINE=threaded`; the
/// shared absorber, writer, and admission logic make it behaviorally
/// identical to the reactor for single-window serving.
pub(crate) fn serve_threaded(
    listener: &TcpListener,
    session: &mut dyn CollectorSession,
    policy: &SnapshotPolicy,
    options: &ServeOptions,
) -> Result<ServeSummary, CollectorError> {
    let start_count = session.count();
    let decoder = session.batch_decoder();
    let max_connections = options.max_connections.max(1);
    let (commit_tx, commit_rx) =
        bounded_weighted::<Commit>(options.queue_depth.max(1), options.memory_budget_bytes);
    // Connection permits: the acceptor takes one per live session,
    // handlers return theirs on exit. MPSC fits exactly: many handlers
    // push permits back, one acceptor pops them.
    let (permit_tx, permit_rx) = bounded::<()>(max_connections);
    for _ in 0..max_connections {
        permit_tx
            .push(())
            .expect("filling a fresh permit channel cannot fail");
    }
    let spool = SnapshotSpool::new();
    let accepted = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let duplicates = AtomicU64::new(0);
    let resumed = AtomicU64::new(0);
    let idle_disconnects = AtomicU64::new(0);
    let admission_sheds = AtomicU64::new(0);
    let quota_sheds = AtomicU64::new(0);
    let rate_sheds = AtomicU64::new(0);
    let oversized_frames = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let accept_errors = AtomicU64::new(0);
    let supervisor_restarts = AtomicU64::new(0);
    let peak_queue_bytes = AtomicU64::new(0);
    // The absorber publishes the running window count here so the
    // acceptor can enforce the report quota without touching the session.
    let absorbed_total = AtomicU64::new(start_count);
    let faults_before = faults::injected();
    let last_session_error: Mutex<Option<String>> = Mutex::new(None);
    let writer_error: Mutex<Option<CollectorError>> = Mutex::new(None);
    let accept_error: Mutex<Option<CollectorError>> = Mutex::new(None);
    let absorber_panic: Mutex<Option<String>> = Mutex::new(None);
    listener
        .set_nonblocking(true)
        .map_err(|e| CollectorError::Io(format!("set_nonblocking: {e}")))?;

    let scope_result = ldp_pool::service_scope(|scope| {
        // Stage 3: the snapshot writer — the only thread doing snapshot
        // I/O while the stream is live. On a persist failure it poisons
        // the spool (so a sequenced flush waiting on durability fails
        // instead of hanging) and raises shutdown: a window that can no
        // longer persist should wind down, not keep acking. A *panic*
        // during persist is supervised: the same generation is retried up
        // to MAX_WRITER_RESTARTS times (a durability waiter must never
        // hang on a generation that was taken but never marked), then the
        // stage gives up through the same poison-and-shutdown path.
        let spool_ref = &spool;
        let writer_error_ref = &writer_error;
        let writer_shutdown = Arc::clone(&options.shutdown);
        let restarts_ref = &supervisor_restarts;
        scope.spawn("snapshot-writer", move || {
            run_writer(
                spool_ref,
                policy,
                writer_error_ref,
                &writer_shutdown,
                restarts_ref,
            );
        });

        // Stage 1: the acceptor and its per-connection handlers. A peer
        // that cannot be admitted — no free handler slot, quota met, or
        // an `admission` fault armed — is accepted just long enough to be
        // told `!busy <retry-ms>` and closed: explicit, retryable
        // backpressure instead of invisible time in the TCP backlog.
        {
            let commit_tx = commit_tx.clone();
            let decoder = Arc::clone(&decoder);
            let shutdown = Arc::clone(&options.shutdown);
            let accepted_ref = &accepted;
            let completed_ref = &completed;
            let failed_ref = &failed;
            let idle_ref = &idle_disconnects;
            let admission_sheds_ref = &admission_sheds;
            let quota_sheds_ref = &quota_sheds;
            let rate_sheds_ref = &rate_sheds;
            let oversized_ref = &oversized_frames;
            let evictions_ref = &evictions;
            let accept_errors_ref = &accept_errors;
            let absorbed_ref = &absorbed_total;
            let last_error_ref = &last_session_error;
            let accept_error_ref = &accept_error;
            let session_limit = options.connections;
            let report_quota = options.report_quota;
            let busy_retry = options.busy_retry;
            let limits = Arc::new(ConnLimits {
                max_frame_bytes: options.max_frame_bytes,
                rate: (options.max_rps_per_conn > 0.0).then_some(options.max_rps_per_conn),
                ack_deadline: options.ack_deadline,
                idle_timeout: options.idle_timeout,
            });
            scope.spawn("acceptor", move || {
                let mut permit_held = false;
                let mut accept_backoff = ACCEPT_TICK;
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if session_limit > 0 && accepted_ref.load(Ordering::SeqCst) >= session_limit {
                        break;
                    }
                    let quota_met =
                        report_quota > 0 && absorbed_ref.load(Ordering::SeqCst) >= report_quota;
                    if !permit_held && !quota_met {
                        permit_held = permit_rx.try_pop().is_some();
                    }
                    if faults::hit("accept").is_some() {
                        // An injected accept failure (standing in for fd
                        // exhaustion): back off and keep listening.
                        accept_errors_ref.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(accept_backoff);
                        accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                        continue;
                    }
                    match listener.accept() {
                        Ok((mut stream, _addr)) => {
                            accept_backoff = ACCEPT_TICK;
                            // The listener's nonblocking flag is inherited
                            // by accepted sockets on some platforms; both
                            // the shed write and handler reads want
                            // blocking I/O with explicit timeouts.
                            let _ = stream.set_nonblocking(false);
                            if quota_met {
                                quota_sheds_ref.fetch_add(1, Ordering::SeqCst);
                                shed_at_accept(stream, busy_retry);
                                continue;
                            }
                            if !permit_held {
                                admission_sheds_ref.fetch_add(1, Ordering::SeqCst);
                                shed_at_accept(stream, busy_retry);
                                continue;
                            }
                            if faults::hit("admission").is_some() {
                                // Injected admission pressure: shed this
                                // peer as if the fleet were full (the
                                // permit stays held for the next one).
                                admission_sheds_ref.fetch_add(1, Ordering::SeqCst);
                                shed_at_accept(stream, busy_retry);
                                continue;
                            }
                            permit_held = false;
                            accepted_ref.fetch_add(1, Ordering::SeqCst);
                            let commit_tx = commit_tx.clone();
                            let permit_tx = permit_tx.clone();
                            let decoder = Arc::clone(&decoder);
                            let shutdown = Arc::clone(&shutdown);
                            let limits = Arc::clone(&limits);
                            scope.spawn("conn", move || {
                                let counters = ConnCounters {
                                    rate_sheds: rate_sheds_ref,
                                    oversized: oversized_ref,
                                };
                                match handle_connection(
                                    &mut stream,
                                    decoder.as_ref(),
                                    &commit_tx,
                                    &shutdown,
                                    &limits,
                                    &counters,
                                ) {
                                    Ok(SessionEnd::EndOfStream) => {
                                        completed_ref.fetch_add(1, Ordering::SeqCst);
                                    }
                                    Ok(SessionEnd::Shutdown) => {}
                                    Ok(SessionEnd::PeerClosed) => {
                                        failed_ref.fetch_add(1, Ordering::SeqCst);
                                        *last_error_ref.lock().expect("last error lock") = Some(
                                            "peer closed without an end-of-stream frame".into(),
                                        );
                                    }
                                    Ok(SessionEnd::Idle) => {
                                        idle_ref.fetch_add(1, Ordering::SeqCst);
                                        *last_error_ref.lock().expect("last error lock") = Some(
                                            "peer idled past --idle-timeout between frames".into(),
                                        );
                                    }
                                    Ok(SessionEnd::Evicted) => {
                                        evictions_ref.fetch_add(1, Ordering::SeqCst);
                                        *last_error_ref.lock().expect("last error lock") =
                                            Some("slow consumer evicted past --ack-deadline (committed state stands)".into());
                                    }
                                    Err(e) => {
                                        failed_ref.fetch_add(1, Ordering::SeqCst);
                                        *last_error_ref.lock().expect("last error lock") =
                                            Some(e.to_string());
                                    }
                                }
                                let _ = permit_tx.push(());
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_TICK);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) if is_fd_exhaustion(&e) => {
                            // EMFILE/ENFILE: the process (or host) is out of
                            // file descriptors. Crashing would drop every
                            // live session over a transient condition —
                            // instead back off (capped) and retry; handler
                            // exits return fds continuously.
                            accept_errors_ref.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(accept_backoff);
                            accept_backoff = (accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                        }
                        Err(e) => {
                            *accept_error_ref.lock().expect("accept error lock") =
                                Some(CollectorError::Io(format!("accept: {e}")));
                            break;
                        }
                    }
                }
            });
        }

        // Stage 2: this thread is the absorber — the single owner of the
        // session. Drop the original sender so the queue disconnects
        // once the acceptor and every handler are done. The loop runs
        // under the supervisor's catch_unwind: a panic here must quiesce
        // the pipeline and still reach the final-snapshot path below, not
        // wedge every handler blocked on an ack.
        drop(commit_tx);
        let absorber = std::panic::AssertUnwindSafe(|| {
            let shared = AbsorberShared {
                policy,
                spool: &spool,
                duplicates: &duplicates,
                resumed: &resumed,
                absorbed_total: &absorbed_total,
            };
            while let Some(commit) = commit_rx.pop() {
                absorb_commit(session, &shared, commit);
            }
        });
        if let Err(panic) = std::panic::catch_unwind(absorber) {
            *absorber_panic.lock().expect("absorber panic lock") =
                Some(panic_message(panic.as_ref()));
            // Quiesce: stop accepting, fail every blocked or future
            // handler push fast (dropping the receiver disconnects the
            // queue), and let the scope drain.
            options.shutdown.store(true, Ordering::SeqCst);
        }
        peak_queue_bytes.store(commit_rx.peak_bytes() as u64, Ordering::SeqCst);
        drop(commit_rx);
        spool.close();
    });
    // Handlers want blocking accepts again if serve_once follows.
    let _ = listener.set_nonblocking(false);
    // The final durable snapshot, synchronous and attempted on *every*
    // exit path — a contained panic must still leave each acked frame on
    // disk: `serve` never returns with the window less persisted than the
    // policy promises.
    let final_snapshot = policy.apply(session, session.count(), true);
    scope_result.map_err(|e| CollectorError::Io(format!("serve service failure: {e}")))?;
    if let Some(msg) = absorber_panic.into_inner().expect("absorber panic lock") {
        final_snapshot?;
        return Err(CollectorError::Panicked(format!("absorber: {msg}")));
    }
    if let Some(e) = accept_error.into_inner().expect("accept error lock") {
        return Err(e);
    }
    if let Some(e) = writer_error.into_inner().expect("writer error lock") {
        return Err(e);
    }
    final_snapshot?;
    Ok(ServeSummary {
        accepted: accepted.into_inner(),
        completed: completed.into_inner(),
        failed: failed.into_inner(),
        reports: session.count() - start_count,
        snapshots_superseded: spool.superseded(),
        duplicates_suppressed: duplicates.into_inner(),
        sessions_resumed: resumed.into_inner(),
        idle_disconnects: idle_disconnects.into_inner(),
        admission_sheds: admission_sheds.into_inner(),
        quota_sheds: quota_sheds.into_inner(),
        rate_sheds: rate_sheds.into_inner(),
        oversized_frames: oversized_frames.into_inner(),
        evictions: evictions.into_inner(),
        supervisor_restarts: supervisor_restarts.into_inner(),
        peak_queue_bytes: peak_queue_bytes.into_inner(),
        accept_errors: accept_errors.into_inner(),
        faults_injected: faults::injected() - faults_before,
        window_reports: Vec::new(),
        last_session_error: last_session_error.into_inner().expect("last error lock"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::build_session;

    /// A forwarder thread streaming frames; returns the acks it saw.
    fn forward(addr: std::net::SocketAddr, frames: Vec<String>, fin: bool) -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut acks = Vec::new();
        for f in frames {
            write_frame(&mut stream, &f).unwrap();
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).unwrap();
            acks.push(ack[0]);
            if ack[0] == b'-' {
                return acks;
            }
        }
        if fin {
            stream.write_all(&0u32.to_be_bytes()).unwrap();
            let mut ack = [0u8; 1];
            stream.read_exact(&mut ack).unwrap();
            acks.push(ack[0]);
        }
        acks
    }

    #[test]
    fn framed_stream_equals_direct_ingestion() {
        let spec = "grr:eps=1,d=8";
        let mut session = build_session(spec).unwrap();
        let reports = session.gen_reports(900, 3).unwrap();
        // Expected: direct one-shot ingestion.
        let mut direct = build_session(spec).unwrap();
        direct.ingest_text(&reports).unwrap();
        let expected = direct.finalize_text().unwrap();
        // Framed: three batches over a socket.
        let lines: Vec<&str> = reports.lines().collect();
        let frames: Vec<String> = lines.chunks(300).map(|c| c.join("\n")).collect();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || forward(addr, frames, true));
        let policy = SnapshotPolicy::default();
        let n = serve_once(&listener, session.as_mut(), &policy).unwrap();
        assert_eq!(n, 900);
        assert_eq!(client.join().unwrap(), vec![b'+', b'+', b'+', b'+']);
        assert_eq!(session.finalize_text().unwrap(), expected);
    }

    #[test]
    fn bad_frame_is_rejected_without_absorbing_and_window_survives() {
        let spec = "grr:eps=1,d=8";
        let mut session = build_session(spec).unwrap();
        let good = session.gen_reports(100, 5).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let frames = vec![good.clone(), format!("{good}not-a-report\n")];
        let client = std::thread::spawn(move || forward(addr, frames, false));
        let policy = SnapshotPolicy::default();
        let err = serve_once(&listener, session.as_mut(), &policy).unwrap_err();
        assert!(matches!(err, CollectorError::Core(_)));
        assert_eq!(client.join().unwrap(), vec![b'+', b'-']);
        // Only the good frame was absorbed; the window remains usable.
        assert_eq!(session.count(), 100);
        assert!(session.finalize_text().is_ok());
    }

    #[test]
    fn snapshot_cadence_persists_during_the_stream() {
        let dir = std::env::temp_dir().join("ldp-collector-server-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.snap");
        let _ = std::fs::remove_file(&path);
        let spec = "pm:eps=1";
        let mut session = build_session(spec).unwrap();
        let reports = session.gen_reports(600, 11).unwrap();
        let lines: Vec<&str> = reports.lines().collect();
        let frames: Vec<String> = lines.chunks(200).map(|c| c.join("\n")).collect();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || forward(addr, frames, true));
        let policy = SnapshotPolicy {
            path: Some(path.clone()),
            every: 250,
            keep: 0,
        };
        serve_once(&listener, session.as_mut(), &policy).unwrap();
        client.join().unwrap();
        // The final snapshot recovers the full window.
        let mut recovered = build_session(spec).unwrap();
        recovered
            .restore(&crate::io::read_to_string(&path).unwrap())
            .unwrap();
        assert_eq!(recovered.count(), 600);
        assert_eq!(
            recovered.finalize_text().unwrap(),
            session.finalize_text().unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
