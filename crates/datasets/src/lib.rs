//! Evaluation workloads for the sw-ldp experiments (paper §6.1, Figure 1).
//!
//! One exact synthetic dataset (Beta(5, 2)) and three calibrated synthetic
//! substitutes for the paper's non-redistributable real-world datasets
//! (NYC taxi pickup times, ACS income, SF retirement) — see
//! [`generators`] for the substitution details and DESIGN.md for the
//! rationale.

#![forbid(unsafe_code)]
// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it is
// also true for NaN, which is exactly what the validators need to reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod generators;
pub mod io;
pub mod spec;

pub use io::{load_values, save_values, LoadError};
pub use spec::{Dataset, DatasetKind, DatasetSpec};
