//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`proptest!`] macro with `#![proptest_config(..)]`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range strategies for
//! the primitive numeric types, `prop::collection::vec`, and the `prop_map`
//! / `prop_filter_map` combinators.
//!
//! Differences from the real crate: test cases are drawn from a
//! deterministic per-test RNG (seeded from the test name) and failing
//! inputs are reported but **not shrunk**. Property sources compile
//! unchanged against the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A valid range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Nested module mirror so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn map_and_filter_map_compose(
            v in prop::collection::vec(0.0f64..1.0, 1..8)
                .prop_filter_map("need mass", |v| {
                    let s: f64 = v.iter().sum();
                    if s > 1e-9 { Some(v) } else { None }
                })
                .prop_map(|v| v.len())
        ) {
            prop_assert!(v >= 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    mod failing {
        use crate::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }

        #[test]
        #[should_panic(expected = "proptest case failed")]
        fn failing_property_panics() {
            always_fails();
        }
    }
}
