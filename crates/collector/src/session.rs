//! The type-erased collection session: one mechanism configuration, one
//! streaming aggregation state, driven entirely through text.
//!
//! [`CollectorSession`] erases the mechanism's associated types behind an
//! object-safe surface whose currency is the two `ldp-core` text formats:
//! wire-report lines in, snapshot files out. The generic [`Session`] is
//! the single implementation — the registry instantiates it once per
//! mechanism family, supplying the input adapter (how a synthetic client
//! value in `[0, 1]` maps to the mechanism's input domain) and the output
//! renderer (how the finalized estimate prints).

use crate::error::CollectorError;
use ldp_core::snapshot::SnapshotState;
use ldp_core::{
    decode_snapshot_with_sessions, encode_snapshot_with_sessions, Mechanism, SessionCursors,
    WireReport,
};
use ldp_numeric::SplitMix64;
use rand::Rng;
use std::any::Any;
use std::sync::Arc;

/// Below this many lines a bulk ingest stays on the calling thread; the
/// pool's per-batch bookkeeping only pays for itself on real batches.
const SHARD_MIN_LINES: usize = 4096;

/// One collection window over one mechanism configuration, driven through
/// text: wire-report lines in, snapshot text and rendered estimates out.
///
/// All mutating entry points are all-or-nothing: on any error the session
/// state is exactly what it was before the call, so a collector can log
/// the offending input and keep its window.
pub trait CollectorSession: Send {
    /// The canonical mechanism id (also the snapshot header id). Two
    /// sessions with equal ids accept each other's snapshots.
    fn mechanism_id(&self) -> &str;

    /// The mechanism's 64-bit configuration fingerprint.
    fn fingerprint(&self) -> u64;

    /// Reports absorbed so far.
    fn count(&self) -> u64;

    /// Decodes and absorbs one wire-report line.
    fn ingest_line(&mut self, line: &str) -> Result<(), CollectorError>;

    /// Decodes and absorbs every non-blank line of `text`, sharding the
    /// decode+absorb across the shared worker pool for large batches.
    /// Returns the number of reports absorbed. All-or-nothing.
    fn ingest_text(&mut self, text: &str) -> Result<u64, CollectorError>;

    /// Renders the current state as a complete snapshot file.
    fn snapshot_text(&self) -> String;

    /// Replaces the session state with a snapshot's (crash recovery).
    /// Rejects snapshots from other configurations, truncated files, and
    /// corrupted files; on rejection the state is unchanged.
    fn restore(&mut self, snapshot: &str) -> Result<(), CollectorError>;

    /// Folds a parallel collector's snapshot into this session
    /// (multi-shard merge). Same rejection rules as [`CollectorSession::restore`].
    fn merge_snapshot(&mut self, snapshot: &str) -> Result<(), CollectorError>;

    /// Finalizes the estimate over everything absorbed and renders it as
    /// text (one value per line; see `docs/OPERATIONS.md` for the layout
    /// per mechanism family). Does not consume the window.
    fn finalize_text(&self) -> Result<String, CollectorError>;

    /// Simulates `n` clients with a deterministic synthetic population
    /// (uniform values in `[0, 1)` on a seed-derived stream) and returns
    /// their wire-report lines — the client side of the zero-to-estimate
    /// walkthrough in `docs/OPERATIONS.md` and of the test harness.
    fn gen_reports(&self, n: u64, seed: u64) -> Result<String, CollectorError>;

    /// A shareable decoder for this session's wire format: the
    /// connection-local half of the concurrent serve path. Handlers call
    /// [`BatchDecoder::prepare`] on their own threads (decode +
    /// validation + pre-absorption into a private shard state, no shared
    /// state touched); the resulting [`PreparedBatch`]es flow through a
    /// bounded queue to the single thread that owns the session and
    /// calls [`CollectorSession::absorb_prepared`].
    fn batch_decoder(&self) -> Arc<dyn BatchDecoder>;

    /// Commits a batch prepared by this session's [`BatchDecoder`]:
    /// merges its shard state into the window (exact, so the result is
    /// bit-identical to having ingested the batch's lines directly) and
    /// returns the number of reports absorbed. All-or-nothing; rejects
    /// batches prepared for a different configuration.
    fn absorb_prepared(&mut self, batch: PreparedBatch) -> Result<u64, CollectorError>;

    /// The next expected frame sequence number for sequenced session `id`
    /// (`0` for an id never seen — fresh sessions start at sequence 0).
    /// See `crate::protocol` for the dedup rules built on this cursor.
    fn session_cursor(&self, id: &str) -> u64;

    /// Records `cursor` as the next expected sequence number for `id`.
    /// The caller (the serve path's absorber) advances the cursor in the
    /// same serialized step as the absorb it vouches for, so snapshots
    /// always capture state and cursors consistently.
    fn set_session_cursor(&mut self, id: &str, cursor: u64);

    /// Every sequenced-session dedup cursor this window holds (they ride
    /// inside [`CollectorSession::snapshot_text`] and survive
    /// [`CollectorSession::restore`]).
    fn session_cursors(&self) -> SessionCursors;
}

/// A decoded and pre-absorbed batch in flight from a connection thread to
/// the absorber: a type-erased shard state plus its report count, stamped
/// with the preparing configuration's fingerprint so a batch can never
/// commit into the wrong window.
pub struct PreparedBatch {
    payload: Box<dyn Any + Send>,
    fingerprint: u64,
    reports: u64,
}

impl PreparedBatch {
    /// Reports pre-absorbed into this batch's shard state.
    #[must_use]
    pub fn reports(&self) -> u64 {
        self.reports
    }
}

/// The connection-local decoding stage of the concurrent serve path: owns
/// a clone of the mechanism configuration (mechanisms are cheap O(d̃)
/// values) and turns frame payloads into [`PreparedBatch`]es without ever
/// touching the shared window, so decode + validation fan out across
/// connection threads while absorption stays serialized.
pub trait BatchDecoder: Send + Sync {
    /// Decodes every non-blank line of `text` and pre-absorbs the reports
    /// into a fresh shard state. Any malformed line fails the whole batch
    /// with nothing to commit — atomic frame rejection happens *here*, on
    /// the connection thread, before the absorber ever sees the frame.
    fn prepare(&self, text: &str) -> Result<PreparedBatch, CollectorError>;
}

/// The input adapter a registry entry supplies: how a synthetic client
/// value in `[0, 1)` maps into the mechanism's input domain (identity,
/// bucketization, or the signed transform).
pub type InputAdapter<I> = Box<dyn Fn(f64) -> I + Send + Sync>;

/// The output renderer a registry entry supplies: how a finalized
/// estimate prints (one value per line; see `docs/OPERATIONS.md`).
pub type OutputRenderer<O> = Box<dyn Fn(&O) -> Result<String, CollectorError> + Send + Sync>;

/// The one generic [`CollectorSession`] implementation.
pub struct Session<M: Mechanism> {
    mechanism: M,
    state: M::State,
    count: u64,
    cursors: SessionCursors,
    id: String,
    to_input: InputAdapter<M::Input>,
    render: OutputRenderer<M::Output>,
}

/// The [`BatchDecoder`] for a [`Session<M>`]: a clone of the mechanism,
/// decoding on whatever thread calls it.
struct Decoder<M: Mechanism> {
    mechanism: M,
}

impl<M> BatchDecoder for Decoder<M>
where
    M: Mechanism + Clone + Send + Sync + 'static,
    M::Report: WireReport,
    M::State: Send + 'static,
{
    fn prepare(&self, text: &str) -> Result<PreparedBatch, CollectorError> {
        // Decode the whole frame first, then absorb through the bulk
        // `absorb_slice` path so every family's vectorized kernel (OUE
        // bit-count, HRR scatter, ExactSum bulk add, SW bucket pass)
        // carries the serve path too. Bit-identical to per-line absorbs.
        let mut reports = Vec::new();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            reports.push(M::Report::decode(line)?);
        }
        let mut state = self.mechanism.empty_state();
        self.mechanism.absorb_slice(&mut state, &reports)?;
        Ok(PreparedBatch {
            payload: Box::new(state),
            fingerprint: self.mechanism.fingerprint(),
            reports: reports.len() as u64,
        })
    }
}

impl<M> Session<M>
where
    M: Mechanism + Clone + Send + Sync + 'static,
    M::Input: Sized,
    M::Report: WireReport + Send,
    M::State: SnapshotState + Clone + Send + Sync + 'static,
{
    /// A fresh session for `mechanism` under the canonical id `id`.
    pub fn new(
        mechanism: M,
        id: String,
        to_input: InputAdapter<M::Input>,
        render: OutputRenderer<M::Output>,
    ) -> Self {
        let state = mechanism.empty_state();
        Session {
            mechanism,
            state,
            count: 0,
            cursors: SessionCursors::new(),
            id,
            to_input,
            render,
        }
    }

    /// Decodes a block of lines into reports (no state change).
    fn decode_block(&self, lines: &[&str]) -> Result<Vec<M::Report>, CollectorError> {
        let mut reports = Vec::with_capacity(lines.len());
        for line in lines {
            reports.push(M::Report::decode(line)?);
        }
        Ok(reports)
    }

    /// Decode + absorb a block into a fresh state (the per-shard job).
    fn absorb_block(&self, lines: &[&str]) -> Result<(M::State, u64), CollectorError> {
        let reports = self.decode_block(lines)?;
        let mut state = self.mechanism.empty_state();
        self.mechanism.absorb_slice(&mut state, &reports)?;
        Ok((state, reports.len() as u64))
    }
}

impl<M> CollectorSession for Session<M>
where
    M: Mechanism + Clone + Send + Sync + 'static,
    M::Input: Sized,
    M::Report: WireReport + Send,
    M::State: SnapshotState + Clone + Send + Sync + 'static,
{
    fn mechanism_id(&self) -> &str {
        &self.id
    }

    fn fingerprint(&self) -> u64 {
        self.mechanism.fingerprint()
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn ingest_line(&mut self, line: &str) -> Result<(), CollectorError> {
        let report = M::Report::decode(line.trim())?;
        self.mechanism.absorb(&mut self.state, &report)?;
        self.count += 1;
        Ok(())
    }

    fn ingest_text(&mut self, text: &str) -> Result<u64, CollectorError> {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        if lines.is_empty() {
            return Ok(0);
        }
        let threads = ldp_pool::configured_threads();
        let shards = threads.min(lines.len() / (SHARD_MIN_LINES / 2)).max(1);
        if shards <= 1 {
            // Sequential path with an explicit checkpoint for the
            // all-or-nothing contract (state is O(d̃), cheap to clone).
            let (shard_state, absorbed) = self.absorb_block(&lines)?;
            self.mechanism.merge_state(&mut self.state, &shard_state)?;
            self.count += absorbed;
            return Ok(absorbed);
        }
        // Sharded path: each pool job decodes and absorbs its chunk into
        // a private state; shard states merge in index order, so the
        // result is identical to sequential ingestion by the
        // merge-equals-concatenation contract.
        let chunk = lines.len().div_ceil(shards);
        let chunks: Vec<&[&str]> = lines.chunks(chunk).collect();
        let results = ldp_pool::global()
            .run(chunks.len(), |i| self.absorb_block(chunks[i]))
            .map_err(|e| CollectorError::Io(format!("worker pool failure: {e}")))?;
        let mut absorbed = 0;
        let mut shard_states = Vec::with_capacity(results.len());
        for r in results {
            let (state, n) = r?;
            absorbed += n;
            shard_states.push(state);
        }
        for shard in &shard_states {
            self.mechanism.merge_state(&mut self.state, shard)?;
        }
        self.count += absorbed;
        Ok(absorbed)
    }

    fn snapshot_text(&self) -> String {
        encode_snapshot_with_sessions(
            &self.mechanism,
            &self.id,
            &self.state,
            self.count,
            &self.cursors,
        )
    }

    fn restore(&mut self, snapshot: &str) -> Result<(), CollectorError> {
        let (state, count, cursors) =
            decode_snapshot_with_sessions(&self.mechanism, &self.id, snapshot)?;
        self.state = state;
        self.count = count;
        self.cursors = cursors;
        Ok(())
    }

    fn merge_snapshot(&mut self, snapshot: &str) -> Result<(), CollectorError> {
        let (state, count, cursors) =
            decode_snapshot_with_sessions(&self.mechanism, &self.id, snapshot)?;
        self.mechanism.merge_state(&mut self.state, &state)?;
        self.count += count;
        // Per-id max: shards that both saw a session agree on the highest
        // committed sequence (a sequenced client talks to one shard at a
        // time, so the higher cursor subsumes the lower).
        for (id, cursor) in cursors {
            let entry = self.cursors.entry(id).or_insert(0);
            *entry = (*entry).max(cursor);
        }
        Ok(())
    }

    fn finalize_text(&self) -> Result<String, CollectorError> {
        let output = self.mechanism.finalize(&self.state)?;
        (self.render)(&output)
    }

    fn gen_reports(&self, n: u64, seed: u64) -> Result<String, CollectorError> {
        let mut rng = SplitMix64::new(seed);
        let mut out = String::new();
        for _ in 0..n {
            let value: f64 = rng.gen_range(0.0..1.0);
            let input = (self.to_input)(value);
            let report = self.mechanism.randomize(&input, &mut rng)?;
            report.encode(&mut out);
            out.push('\n');
        }
        Ok(out)
    }

    fn batch_decoder(&self) -> Arc<dyn BatchDecoder> {
        Arc::new(Decoder {
            mechanism: self.mechanism.clone(),
        })
    }

    fn absorb_prepared(&mut self, batch: PreparedBatch) -> Result<u64, CollectorError> {
        if batch.fingerprint != self.mechanism.fingerprint() {
            return Err(CollectorError::Protocol(format!(
                "prepared batch fingerprint {:016x} does not match this window ({:016x})",
                batch.fingerprint,
                self.mechanism.fingerprint()
            )));
        }
        let shard = batch.payload.downcast::<M::State>().map_err(|_| {
            CollectorError::Protocol("prepared batch state type does not match this session".into())
        })?;
        // Merging the pre-absorbed shard is bit-identical to ingesting
        // the batch's lines directly, by the merge-equals-concatenation
        // contract (the same step ingest_text's sharded path relies on).
        self.mechanism.merge_state(&mut self.state, &shard)?;
        self.count += batch.reports;
        Ok(batch.reports)
    }

    fn session_cursor(&self, id: &str) -> u64 {
        self.cursors.get(id).copied().unwrap_or(0)
    }

    fn set_session_cursor(&mut self, id: &str, cursor: u64) {
        self.cursors.insert(id.to_string(), cursor);
    }

    fn session_cursors(&self) -> SessionCursors {
        self.cursors.clone()
    }
}

/// Streams a replay log into the session in bounded blocks — the one
/// implementation of the resume invariant, shared by the `ingest`
/// subcommand and [`ingest_resuming`].
///
/// Skips the first `skip` non-blank lines (the reports a restored
/// snapshot already accounts for), absorbs at most `max_reports` more,
/// and calls `on_block` after every absorbed block with the session and
/// the count *before* the block — the snapshot-cadence hook. Peak memory
/// is O(`block`), never O(log). Returns the newly absorbed count.
///
/// Refuses a log holding fewer than `skip` reports (unless the
/// `max_reports` ceiling stopped ingestion first): a shorter log means
/// the snapshot and the stream have diverged, and resuming would
/// silently drop the difference.
pub fn ingest_lines<S, E>(
    session: &mut dyn CollectorSession,
    lines: impl Iterator<Item = Result<S, E>>,
    skip: u64,
    max_reports: u64,
    block: u64,
    mut on_block: impl FnMut(&mut dyn CollectorSession, u64) -> Result<(), CollectorError>,
) -> Result<u64, CollectorError>
where
    S: AsRef<str>,
    E: std::fmt::Display,
{
    let start = session.count();
    let ceiling = start.saturating_add(max_reports);
    let block = block.max(1) as usize;
    let mut pending: Vec<S> = Vec::with_capacity(block.min(8_192));
    let mut skipped = 0u64;
    let mut stopped_early = false;
    fn flush<S: AsRef<str>>(
        session: &mut dyn CollectorSession,
        pending: &mut Vec<S>,
        on_block: &mut impl FnMut(&mut dyn CollectorSession, u64) -> Result<(), CollectorError>,
    ) -> Result<(), CollectorError> {
        let before = session.count();
        let joined = pending
            .iter()
            .map(AsRef::as_ref)
            .collect::<Vec<_>>()
            .join("\n");
        session.ingest_text(&joined)?;
        pending.clear();
        on_block(session, before)
    }
    for line in lines {
        let line = line.map_err(|e| CollectorError::Io(format!("reading input: {e}")))?;
        if line.as_ref().trim().is_empty() {
            continue;
        }
        if skipped < skip {
            skipped += 1;
            continue;
        }
        if session.count() + pending.len() as u64 >= ceiling {
            stopped_early = true;
            break;
        }
        pending.push(line);
        if pending.len() >= block {
            flush(session, &mut pending, &mut on_block)?;
        }
    }
    if !stopped_early && skipped < skip {
        return Err(CollectorError::Resume(format!(
            "snapshot has absorbed {skip} reports but the input stream holds only {skipped} \
             — resuming would silently drop the difference"
        )));
    }
    if !pending.is_empty() {
        flush(session, &mut pending, &mut on_block)?;
    }
    Ok(session.count() - start)
}

/// Resumes a replay log after a crash: skips the `session.count()`
/// non-blank lines the restored snapshot already accounts for, then
/// ingests the remainder (via [`ingest_lines`]). Returns the number of
/// newly absorbed reports.
///
/// This is the exactly-once recovery path for ordered, append-only replay
/// logs (the duplicate-free case); socket ingestion without a replay log
/// is at-least-once — see `docs/OPERATIONS.md`.
pub fn ingest_resuming(
    session: &mut dyn CollectorSession,
    text: &str,
) -> Result<u64, CollectorError> {
    let skip = session.count();
    ingest_lines(
        session,
        text.lines().map(Ok::<_, std::convert::Infallible>),
        skip,
        u64::MAX,
        8_192,
        |_, _| Ok(()),
    )
}
