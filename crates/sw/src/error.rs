//! Error type for the Square Wave / EMS crate.

use ldp_core::CoreError;
use std::fmt;

/// Errors produced by wave mechanisms and reconstruction algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum SwError {
    /// The privacy parameter ε must be positive and finite.
    InvalidEpsilon(f64),
    /// The wave bandwidth `b` must be positive and finite.
    InvalidBandwidth(f64),
    /// A private value fell outside the input domain `[0, 1]`.
    ValueOutOfDomain(f64),
    /// Some other parameter was invalid (domain sizes, thresholds, …).
    InvalidParameter(String),
    /// Reconstruction could not proceed (e.g. empty report set).
    Reconstruction(String),
}

impl fmt::Display for SwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            SwError::InvalidBandwidth(b) => {
                write!(f, "bandwidth b must be positive and finite, got {b}")
            }
            SwError::ValueOutOfDomain(v) => {
                write!(f, "private value {v} outside the input domain [0, 1]")
            }
            SwError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SwError::Reconstruction(msg) => write!(f, "reconstruction failed: {msg}"),
        }
    }
}

impl std::error::Error for SwError {}

/// Parameter validation is centralized in `ldp-core`
/// ([`ldp_core::Epsilon`]); this impl folds its errors back into the
/// crate's established variants.
impl From<CoreError> for SwError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::InvalidEpsilon(eps) => SwError::InvalidEpsilon(eps),
            CoreError::Aggregation(msg) => SwError::Reconstruction(msg),
            other => SwError::InvalidParameter(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SwError::InvalidEpsilon(-2.0).to_string().contains("-2"));
        assert!(SwError::ValueOutOfDomain(1.5).to_string().contains("1.5"));
    }

    #[test]
    fn core_validation_maps_to_crate_variants() {
        assert_eq!(
            SwError::from(ldp_core::Epsilon::new(-1.0).unwrap_err()),
            SwError::InvalidEpsilon(-1.0)
        );
        assert!(matches!(
            SwError::from(CoreError::Aggregation("no reports".into())),
            SwError::Reconstruction(_)
        ));
        assert!(matches!(
            SwError::from(CoreError::DomainTooSmall(1)),
            SwError::InvalidParameter(_)
        ));
    }
}
