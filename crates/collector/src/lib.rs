//! `ldp-collector` — a crash-recoverable LDP collection service over the
//! `ldp-core` wire format.
//!
//! The library (and the `ldp-collector` binary it powers) turns the
//! workspace's mechanism implementations into a deployable collection
//! window:
//!
//! - **Ingest** wire-report lines from files, stdin, or a
//!   length-delimited TCP socket ([`server`]), through any registered
//!   mechanism ([`registry`]) — large batches shard decode+absorb across
//!   the shared `ldp-pool`;
//! - **Persist** the O(d̃) aggregator state as versioned,
//!   fingerprint-checked snapshot files (`ldp_core::snapshot`) on a
//!   configurable cadence, written atomically ([`io`]);
//! - **Recover** a crashed window from its last snapshot with
//!   bit-identical results ([`session::ingest_resuming`]), and **merge**
//!   snapshots from parallel collectors exactly (the
//!   merge-equals-concatenation contract, held by integer counts and
//!   `ldp_numeric::ExactSum`).
//!
//! The operator's handbook lives in `docs/OPERATIONS.md`; the normative
//! wire and snapshot formats in `docs/WIRE_FORMAT.md`; the crate map in
//! `docs/ARCHITECTURE.md`.
//!
//! # Examples
//!
//! A full window — simulate clients, collect on two shards, merge,
//! snapshot, recover, estimate:
//!
//! ```
//! use ldp_collector::registry::build_session;
//!
//! let spec = "sw-ems:eps=1,d=32";
//! let mut shard_a = build_session(spec).unwrap();
//! let mut shard_b = build_session(spec).unwrap();
//!
//! // Client side (normally on user devices): wire-report lines.
//! let reports = shard_a.gen_reports(4_000, 42).unwrap();
//! let (half_a, half_b) = reports.split_at(reports.len() / 2);
//! let pivot = half_a.rfind('\n').map(|i| i + 1).unwrap_or(0);
//!
//! // Two parallel collectors ingest disjoint halves of the stream.
//! shard_a.ingest_text(&reports[..pivot]).unwrap();
//! shard_b.ingest_text(&reports[pivot..]).unwrap();
//! let _ = half_b;
//!
//! // Shard B snapshots; shard A folds the snapshot in and finalizes.
//! shard_a.merge_snapshot(&shard_b.snapshot_text()).unwrap();
//! assert_eq!(shard_a.count(), 4_000);
//!
//! // The merged window equals single-collector ingestion bit for bit.
//! let mut single = build_session(spec).unwrap();
//! single.ingest_text(&reports).unwrap();
//! assert_eq!(shard_a.finalize_text().unwrap(), single.finalize_text().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod faults;
pub mod io;
pub mod limit;
pub mod machine;
pub mod protocol;
mod reactor_serve;
pub mod registry;
pub mod server;
pub mod session;

pub use error::CollectorError;
pub use registry::build_session;
pub use server::{
    serve, serve_connection, serve_connection_capped, serve_once, serve_once_capped, serve_routed,
    summary_json, ServeOptions, ServeSummary, SnapshotPolicy, WindowRoute, DEFAULT_MAX_FRAME_BYTES,
};
pub use session::{ingest_lines, ingest_resuming, CollectorSession, Session};
