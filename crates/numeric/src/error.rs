//! Error type shared by the numeric substrate.

use std::fmt;

/// Errors produced by numeric routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A parameter was outside its mathematical domain (e.g. a negative
    /// shape parameter, an empty histogram, a NaN input).
    InvalidParameter(String),
    /// Two linear-algebra operands had incompatible shapes.
    DimensionMismatch {
        /// Shape the operation expected.
        expected: String,
        /// Shape it received.
        actual: String,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            NumericError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = NumericError::InvalidParameter("alpha must be positive".into());
        assert!(e.to_string().contains("alpha must be positive"));
        let e = NumericError::DimensionMismatch {
            expected: "3x4".into(),
            actual: "4x3".into(),
        };
        assert!(e.to_string().contains("3x4"));
        assert!(e.to_string().contains("4x3"));
    }
}
