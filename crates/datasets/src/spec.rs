//! Dataset registry and scaling (paper §6.1, Figure 1).

use crate::generators;
use ldp_numeric::{Histogram, NumericError, SplitMix64};
use serde::{Deserialize, Serialize};

/// The four evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Synthetic Beta(5, 2), 100k samples, 256 buckets.
    Beta,
    /// NYC taxi pickup times (synthetic substitute), 2,189,968 samples,
    /// 1024 buckets.
    Taxi,
    /// ACS income (synthetic substitute), 2,308,374 samples, 1024 buckets.
    Income,
    /// SF retirement (synthetic substitute), 178,012 samples, 1024 buckets.
    Retirement,
}

impl DatasetKind {
    /// All four kinds in the paper's presentation order.
    #[must_use]
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Beta,
            DatasetKind::Taxi,
            DatasetKind::Income,
            DatasetKind::Retirement,
        ]
    }

    /// Human-readable name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Beta => "Beta(5,2)",
            DatasetKind::Taxi => "Taxi pickup time",
            DatasetKind::Income => "Income",
            DatasetKind::Retirement => "Retirement",
        }
    }

    /// The sample count the paper evaluates with.
    #[must_use]
    pub fn paper_n(&self) -> usize {
        match self {
            DatasetKind::Beta => 100_000,
            DatasetKind::Taxi => 2_189_968,
            DatasetKind::Income => 2_308_374,
            DatasetKind::Retirement => 178_012,
        }
    }

    /// The histogram granularity the paper evaluates with.
    #[must_use]
    pub fn paper_buckets(&self) -> usize {
        match self {
            DatasetKind::Beta => 256,
            _ => 1024,
        }
    }

    /// Whether this dataset is spiky (drives the paper's HH-ADMM-vs-EMS
    /// discussion).
    #[must_use]
    pub fn is_spiky(&self) -> bool {
        matches!(self, DatasetKind::Income)
    }
}

/// A reproducible dataset specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which workload to generate.
    pub kind: DatasetKind,
    /// Number of user values.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper-scale specification for a workload.
    #[must_use]
    pub fn paper_scale(kind: DatasetKind, seed: u64) -> Self {
        DatasetSpec {
            kind,
            n: kind.paper_n(),
            seed,
        }
    }

    /// A down-scaled specification (`scale ∈ (0, 1]` of the paper's n,
    /// with a floor of 10k users).
    #[must_use]
    pub fn scaled(kind: DatasetKind, scale: f64, seed: u64) -> Self {
        let n = ((kind.paper_n() as f64 * scale.clamp(0.0, 1.0)) as usize).max(10_000);
        DatasetSpec { kind, n, seed }
    }

    /// Materializes the dataset.
    #[must_use]
    pub fn generate(&self) -> Dataset {
        let mut rng = SplitMix64::new(self.seed);
        let values = match self.kind {
            DatasetKind::Beta => generators::beta_5_2(self.n, &mut rng),
            DatasetKind::Taxi => generators::taxi_like(self.n, &mut rng),
            DatasetKind::Income => generators::income_like(self.n, &mut rng),
            DatasetKind::Retirement => generators::retirement_like(self.n, &mut rng),
        };
        Dataset {
            kind: self.kind,
            values,
        }
    }
}

/// A materialized workload: user values in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which workload this is.
    pub kind: DatasetKind,
    /// Private user values in `[0, 1]`.
    pub values: Vec<f64>,
}

impl Dataset {
    /// Number of users.
    #[must_use]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The ground-truth histogram at granularity `d`.
    pub fn histogram(&self, d: usize) -> Result<Histogram, NumericError> {
        Histogram::from_samples(&self.values, d)
    }

    /// The ground-truth histogram at the paper's granularity.
    pub fn paper_histogram(&self) -> Result<Histogram, NumericError> {
        self.histogram(self.kind.paper_buckets())
    }

    /// Bucket indices of every value at granularity `d` (for the
    /// bucket-domain methods: binning, HH, HaarHRR).
    #[must_use]
    pub fn bucket_values(&self, d: usize) -> Vec<usize> {
        self.values
            .iter()
            .map(|&v| ldp_numeric::histogram::bucket_of(v, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper() {
        assert_eq!(DatasetKind::Beta.paper_n(), 100_000);
        assert_eq!(DatasetKind::Taxi.paper_n(), 2_189_968);
        assert_eq!(DatasetKind::Income.paper_n(), 2_308_374);
        assert_eq!(DatasetKind::Retirement.paper_n(), 178_012);
        assert_eq!(DatasetKind::Beta.paper_buckets(), 256);
        assert_eq!(DatasetKind::Taxi.paper_buckets(), 1024);
        assert!(DatasetKind::Income.is_spiky());
        assert!(!DatasetKind::Taxi.is_spiky());
        assert_eq!(DatasetKind::all().len(), 4);
    }

    #[test]
    fn scaled_spec_respects_floor_and_cap() {
        let s = DatasetSpec::scaled(DatasetKind::Beta, 0.001, 1);
        assert_eq!(s.n, 10_000);
        let s = DatasetSpec::scaled(DatasetKind::Taxi, 2.0, 1);
        assert_eq!(s.n, DatasetKind::Taxi.paper_n());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec {
            kind: DatasetKind::Retirement,
            n: 5_000,
            seed: 42,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.values, b.values);
        assert_eq!(a.n(), 5_000);
    }

    #[test]
    fn histogram_and_bucket_values_are_consistent() {
        let spec = DatasetSpec {
            kind: DatasetKind::Beta,
            n: 20_000,
            seed: 7,
        };
        let ds = spec.generate();
        let h = ds.histogram(64).unwrap();
        let buckets = ds.bucket_values(64);
        let mut counts = vec![0u64; 64];
        for b in buckets {
            counts[b] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / ds.n() as f64;
            assert!((frac - h.probs()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn spec_serializes_roundtrip() {
        // serde derives are exercised through the Debug-format clone
        // equality; the actual wire format is tested via field equality.
        let spec = DatasetSpec::paper_scale(DatasetKind::Income, 3);
        let copied = spec;
        assert_eq!(spec, copied);
        assert_eq!(spec.kind.name(), "Income");
    }
}
