//! The sequenced session protocol: exactly-once ingest over the framed
//! socket.
//!
//! A bare framed session (PR 6's protocol, unchanged) is at-least-once: a
//! crash between absorb and `+` ack leaves the sender unable to retry
//! safely. A **sequenced session** closes that gap with three additions,
//! all layered on the existing u32-BE framing (normative grammar in
//! `docs/WIRE_FORMAT.md` §4):
//!
//! 1. a **hello frame** opens the session, naming a stable session id and
//!    the client's replay horizon; the collector answers `+` plus its
//!    8-byte big-endian dedup **cursor** (the next sequence number it
//!    expects for that id), or `-` if it cannot serve the session;
//! 2. every data frame carries a `seq <n>` first line; the collector
//!    absorbs a frame only when `n` equals the cursor, acks `+` *without
//!    absorbing* when `n` is below it (a replay of something already
//!    committed), and rejects gaps (`n` above the cursor) with `-`;
//! 3. the cursor is persisted inside the snapshot container next to the
//!    state it vouches for (`ldp_core::snapshot` sessions section), so a
//!    collector restart rolls state and cursor back *together* — replayed
//!    frames after a crash dedup exactly like replays after a reconnect.
//!
//! The client's obligation is symmetric: resume from the server's cursor,
//! not its own send position. The server's cursor is the single source of
//! truth — after a collector restart it may be *lower* than what the
//! client saw acked, and the client must re-send those frames (their
//! effects were rolled back with the snapshot).

use crate::error::CollectorError;
pub use ldp_core::valid_session_id;

/// First token of every hello frame payload.
pub const HELLO_MAGIC: &str = "ldp-hello";

/// Hello grammar version this build speaks.
pub const HELLO_VERSION: u32 = 1;

/// A parsed hello frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The stable session id (validated by
    /// [`ldp_core::valid_session_id`]).
    pub session: String,
    /// The client's replay horizon: the lowest sequence number it can
    /// still re-send. The collector rejects the hello when its cursor is
    /// below this — resuming would silently skip frames.
    pub horizon: u64,
    /// The named estimation window this session's reports belong to,
    /// when the collector serves several (`serve --window name=spec`).
    /// `None` routes to the collector's default window — the only one a
    /// single-window collector has.
    pub window: Option<String>,
}

/// Renders a hello frame payload:
///
/// ```text
/// ldp-hello v1
/// session <id>
/// seq <horizon>
/// ```
#[must_use]
pub fn encode_hello(session: &str, horizon: u64) -> String {
    debug_assert!(valid_session_id(session));
    format!("{HELLO_MAGIC} v{HELLO_VERSION}\nsession {session}\nseq {horizon}\n")
}

/// Renders a hello frame payload with an optional window route appended
/// as a fourth line (`window <name>`). With `window = None` this is
/// byte-identical to [`encode_hello`] — the window line is an optional
/// extension of the same v1 grammar, so routed clients interoperate with
/// single-window collectors by simply omitting it.
#[must_use]
pub fn encode_hello_routed(session: &str, horizon: u64, window: Option<&str>) -> String {
    let mut text = encode_hello(session, horizon);
    if let Some(name) = window {
        debug_assert!(valid_session_id(name));
        text.push_str("window ");
        text.push_str(name);
        text.push('\n');
    }
    text
}

/// Whether a frame payload claims to be a hello (first token only —
/// [`parse_hello`] decides whether it is a *well-formed* one).
#[must_use]
pub fn is_hello(payload: &str) -> bool {
    payload.starts_with(HELLO_MAGIC)
}

/// Parses a hello frame payload. Rejects version mismatches, invalid
/// session ids, and any deviation from the three-line grammar.
pub fn parse_hello(payload: &str) -> Result<Hello, CollectorError> {
    let bad = |msg: String| CollectorError::Protocol(format!("malformed hello: {msg}"));
    let mut lines = payload.lines();
    let magic = lines.next().unwrap_or_default();
    let version = magic
        .strip_prefix(HELLO_MAGIC)
        .map(str::trim)
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| bad(format!("first line {magic:?}")))?;
    if version != HELLO_VERSION {
        return Err(bad(format!(
            "version v{version} (this build speaks v{HELLO_VERSION})"
        )));
    }
    let session = lines
        .next()
        .and_then(|l| l.strip_prefix("session "))
        .ok_or_else(|| bad("missing session line".into()))?;
    if !valid_session_id(session) {
        return Err(bad(format!("invalid session id {session:?}")));
    }
    let horizon: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("seq "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| bad("missing or malformed seq line".into()))?;
    let mut window = None;
    if let Some(line) = lines.next() {
        let name = line
            .strip_prefix("window ")
            .ok_or_else(|| bad(format!("trailing line {line:?}")))?;
        if !valid_session_id(name) {
            return Err(bad(format!("invalid window name {name:?}")));
        }
        window = Some(name.to_string());
    }
    if let Some(extra) = lines.next() {
        return Err(bad(format!("trailing line {extra:?}")));
    }
    Ok(Hello {
        session: session.to_string(),
        horizon,
        window,
    })
}

/// Prefixes a data frame payload with its sequence line:
///
/// ```text
/// seq <n>
/// <wire-report lines…>
/// ```
#[must_use]
pub fn encode_seq_frame(seq: u64, payload: &str) -> String {
    format!("seq {seq}\n{payload}")
}

/// Splits a sequenced data frame into its sequence number and the report
/// lines after it. Every data frame of a sequenced session must carry the
/// `seq` line; a frame without one is a protocol violation, not a report
/// batch.
pub fn split_seq_frame(payload: &str) -> Result<(u64, &str), CollectorError> {
    let (first, rest) = payload.split_once('\n').unwrap_or((payload, ""));
    let seq = first
        .strip_prefix("seq ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| {
            CollectorError::Protocol(format!(
                "sequenced session frame does not start with a seq line (found {first:?})"
            ))
        })?;
    Ok((seq, rest))
}

/// Renders the 9-byte hello ack: `+` followed by the collector's cursor,
/// big-endian.
#[must_use]
pub fn encode_hello_ack(cursor: u64) -> [u8; 9] {
    let mut ack = [0u8; 9];
    ack[0] = b'+';
    ack[1..].copy_from_slice(&cursor.to_be_bytes());
    ack
}

/// First byte of a busy-shed response — the third ack verdict next to
/// `+` (committed) and `-` (permanently rejected).
///
/// `!` means **transient overload, nothing was absorbed, try again**: the
/// frame (or the whole connection, when sent at admission or hello time)
/// was shed before any state changed, so re-sending it is always safe —
/// for bare at-least-once sessions as well as sequenced ones. The byte is
/// followed by a u32-BE retry hint in milliseconds ([`encode_busy`]).
pub const BUSY_BYTE: u8 = b'!';

/// Renders the 5-byte busy-shed response: [`BUSY_BYTE`] followed by the
/// suggested retry delay in milliseconds, big-endian. Clients should wait
/// at least this long (or their own capped backoff, whichever is larger)
/// before retrying.
#[must_use]
pub fn encode_busy(retry_ms: u32) -> [u8; 5] {
    let mut shed = [0u8; 5];
    shed[0] = BUSY_BYTE;
    shed[1..].copy_from_slice(&retry_ms.to_be_bytes());
    shed
}

/// Decodes the retry-hint payload of a busy-shed response (the four bytes
/// after [`BUSY_BYTE`]).
#[must_use]
pub fn decode_busy_ms(raw: [u8; 4]) -> u32 {
    u32::from_be_bytes(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let text = encode_hello("phone-7", 3);
        assert!(is_hello(&text));
        assert_eq!(
            parse_hello(&text).unwrap(),
            Hello {
                session: "phone-7".into(),
                horizon: 3,
                window: None
            }
        );
    }

    #[test]
    fn routed_hello_round_trips_and_defaults_off() {
        assert_eq!(
            encode_hello_routed("phone-7", 3, None),
            encode_hello("phone-7", 3),
            "no window must stay byte-identical to the plain hello"
        );
        let text = encode_hello_routed("phone-7", 3, Some("coarse"));
        assert_eq!(
            parse_hello(&text).unwrap(),
            Hello {
                session: "phone-7".into(),
                horizon: 3,
                window: Some("coarse".into())
            }
        );
    }

    #[test]
    fn hello_rejects_deviations() {
        assert!(parse_hello("ldp-hello v2\nsession a\nseq 0\n").is_err());
        assert!(parse_hello("ldp-hello v1\nseq 0\n").is_err());
        assert!(parse_hello("ldp-hello v1\nsession bad id\nseq 0\n").is_err());
        assert!(parse_hello("ldp-hello v1\nsession a\nseq x\n").is_err());
        assert!(parse_hello("ldp-hello v1\nsession a\nseq 0\nextra\n").is_err());
        assert!(parse_hello("ldp-hello v1\nsession a\nseq 0\nwindow bad name\n").is_err());
        assert!(parse_hello("ldp-hello v1\nsession a\nseq 0\nwindow w\nextra\n").is_err());
        assert!(parse_hello("not a hello").is_err());
        assert!(!is_hello("grr 3"));
    }

    #[test]
    fn seq_frames_round_trip() {
        let framed = encode_seq_frame(17, "grr 3\ngrr 5\n");
        assert_eq!(split_seq_frame(&framed).unwrap(), (17, "grr 3\ngrr 5\n"));
        // Empty batch under a sequence number is legal.
        assert_eq!(split_seq_frame("seq 0\n").unwrap(), (0, ""));
        assert_eq!(split_seq_frame("seq 4").unwrap(), (4, ""));
        assert!(split_seq_frame("grr 3\n").is_err());
        assert!(split_seq_frame("seq x\n").is_err());
        assert!(split_seq_frame("").is_err());
    }

    #[test]
    fn busy_shed_layout_round_trips() {
        let shed = encode_busy(2_500);
        assert_eq!(shed[0], BUSY_BYTE);
        assert_eq!(decode_busy_ms(shed[1..].try_into().unwrap()), 2_500);
        // The verdict byte is disjoint from both permanent verdicts.
        assert_ne!(BUSY_BYTE, b'+');
        assert_ne!(BUSY_BYTE, b'-');
    }

    #[test]
    fn hello_ack_layout_is_fixed() {
        let ack = encode_hello_ack(0x0102_0304_0506_0708);
        assert_eq!(ack[0], b'+');
        assert_eq!(
            u64::from_be_bytes(ack[1..].try_into().unwrap()),
            0x0102_0304_0506_0708
        );
    }
}
